// Kernel microbenchmarks (google-benchmark).
//
// Real wall-clock scaling of the arithmetic kernels behind the pipeline.
// These justify the flop formulas in core/cost_model.h: each kernel's
// measured time should scale with the model's operation count.
#include <benchmark/benchmark.h>

#include "core/color_map.h"
#include "core/parallel/parallel_pct.h"
#include "core/pct.h"
#include "core/spectral_angle.h"
#include "hsi/scene.h"
#include "linalg/jacobi_eig.h"
#include "linalg/stats.h"
#include "support/rng.h"

namespace {

using namespace rif;

std::vector<float> random_pixel(int bands, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> px(bands);
  for (auto& v : px) v = static_cast<float>(rng.uniform(0.05, 0.9));
  return px;
}

void BM_SpectralAngle(benchmark::State& state) {
  const int bands = static_cast<int>(state.range(0));
  const auto x = random_pixel(bands, 1);
  const auto y = random_pixel(bands, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::spectral_angle(x, y));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpectralAngle)->Arg(32)->Arg(105)->Arg(210);

void BM_UniqueSetScreen(benchmark::State& state) {
  const int bands = 105;
  const int set_size = static_cast<int>(state.range(0));
  core::UniqueSet set(bands, 1e-6);  // tiny threshold: everything joins
  Rng rng(3);
  for (int i = 0; i < set_size; ++i) {
    std::vector<float> px(bands);
    for (auto& v : px) v = static_cast<float>(rng.uniform(0.05, 0.9));
    set.screen(px);
  }
  const auto probe = random_pixel(bands, 99);
  for (auto _ : state) {
    // Probe never joins (screen against a full set): measures the scan.
    core::UniqueSet copy = set;
    benchmark::DoNotOptimize(copy.screen(probe));
    state.PauseTiming();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_UniqueSetScreen)->Arg(100)->Arg(500)->Arg(2000);

void BM_CovarianceAdd(benchmark::State& state) {
  const int bands = static_cast<int>(state.range(0));
  std::vector<double> mean(bands, 0.4);
  linalg::CovarianceAccumulator acc(bands, mean);
  const auto px = random_pixel(bands, 5);
  for (auto _ : state) {
    acc.add(px);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CovarianceAdd)->Arg(32)->Arg(105)->Arg(210);

void BM_JacobiEigen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  linalg::Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
    a(i, i) += n;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::jacobi_eigen(a));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(32)->Arg(64)->Arg(105)->Unit(benchmark::kMillisecond);

void BM_TransformPixel(benchmark::State& state) {
  const int bands = static_cast<int>(state.range(0));
  const int comps = 3;
  linalg::Matrix t(comps, bands);
  Rng rng(11);
  for (int c = 0; c < comps; ++c) {
    for (int b = 0; b < bands; ++b) t(c, b) = rng.uniform(-1.0, 1.0);
  }
  std::vector<double> mean(bands, 0.4);
  const auto px = random_pixel(bands, 13);
  std::vector<float> out(comps);
  for (auto _ : state) {
    core::transform_pixel(t, mean, px, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransformPixel)->Arg(32)->Arg(105)->Arg(210);

void BM_ColorMapPixel(benchmark::State& state) {
  const std::array<core::ComponentScale, 3> scales{
      core::ComponentScale{0.0, 10.0}, core::ComponentScale{0.0, 10.0},
      core::ComponentScale{0.0, 10.0}};
  double v = 0.0;
  for (auto _ : state) {
    v += 0.001;
    benchmark::DoNotOptimize(core::map_pixel({v, -v, 2 * v}, scales));
  }
}
BENCHMARK(BM_ColorMapPixel);

void BM_SceneGeneration(benchmark::State& state) {
  hsi::SceneConfig config;
  config.width = 64;
  config.height = 64;
  config.bands = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsi::generate_scene(config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SceneGeneration)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SequentialFuse(benchmark::State& state) {
  hsi::SceneConfig config;
  config.width = static_cast<int>(state.range(0));
  config.height = static_cast<int>(state.range(0));
  config.bands = 32;
  const auto scene = hsi::generate_scene(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fuse(scene.cube));
  }
}
BENCHMARK(BM_SequentialFuse)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_MomentAddScalar(benchmark::State& state) {
  const int bands = static_cast<int>(state.range(0));
  std::vector<double> origin(bands, 0.4);
  linalg::MomentAccumulator acc(bands, origin);
  const auto px = random_pixel(bands, 5);
  for (auto _ : state) {
    acc.add(px);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MomentAddScalar)->Arg(32)->Arg(105)->Arg(210);

void BM_MomentAddBlocked(benchmark::State& state) {
  // Same per-pixel work as BM_MomentAddScalar / BM_CovarianceAdd, but fed
  // through the cache-blocked packed-triangle kernel 32 pixels at a time.
  const int bands = static_cast<int>(state.range(0));
  constexpr int kBlock = 32;
  std::vector<double> origin(bands, 0.4);
  linalg::MomentAccumulator acc(bands, origin);
  Rng rng(5);
  std::vector<float> block(static_cast<std::size_t>(kBlock) * bands);
  for (auto& v : block) v = static_cast<float>(rng.uniform(0.05, 0.9));
  for (auto _ : state) {
    acc.add_block(block.data(), kBlock);
  }
  state.SetItemsProcessed(state.iterations() * kBlock);
}
BENCHMARK(BM_MomentAddBlocked)->Arg(32)->Arg(105)->Arg(210);

// --- Shared-memory engine comparison: two-pass vs fused single-pass --------
//
// The acceptance scenario of the fused engine: a spectrally rich scene
// (sizeable unique set, wide bands) at 4 threads. BM_FuseTwoPass walks the
// cube, then the unique set twice more (mean, covariance);
// BM_FuseSinglePassFused folds moment accumulation into the screening
// sweep and corrects against the final mean.

core::ParallelPctConfig engine_config() {
  core::ParallelPctConfig config;
  config.threads = 4;
  config.tiles = 8;
  config.pct.screening_threshold = 0.012;  // rich unique set
  return config;
}

hsi::Scene engine_scene() {
  hsi::SceneConfig config;
  config.width = 48;
  config.height = 48;
  config.bands = 105;  // HYDICE-like band count
  config.noise_sigma = 0.02;
  return hsi::generate_scene(config);
}

void BM_FuseTwoPass(benchmark::State& state) {
  const auto scene = engine_scene();
  const auto config = engine_config();
  core::ThreadPool pool(config.threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fuse_parallel(scene.cube, pool, config));
  }
}
BENCHMARK(BM_FuseTwoPass)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FuseSinglePassFused(benchmark::State& state) {
  const auto scene = engine_scene();
  const auto config = engine_config();
  core::ThreadPool pool(config.threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::fuse_parallel_fused(scene.cube, pool, config));
  }
}
BENCHMARK(BM_FuseSinglePassFused)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
