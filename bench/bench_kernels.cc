// Kernel microbenchmarks: scalar reference vs dispatched SIMD.
//
// Times the fusion hot-path kernels (screening dots, packed-triangle
// moment updates, spectral-angle dot+norms, truncated projection) in both
// forms the kernel layer ships — `kernels::scalar::*` (the seed's scalar
// arithmetic) and the dispatched `kernels::*` (AVX2/SSE2/NEON when the
// build targets them) — plus end-to-end wall time of the two shared-memory
// engines. The acceptance bar for the SIMD layer is >=2x single-thread on
// the screening and moment kernels at >=32 bands.
//
// Machine-readable results go to BENCH_kernels.json so later PRs can track
// the perf trajectory. `--smoke` shrinks the timing budget for CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/parallel/parallel_pct.h"
#include "core/pct.h"
#include "hsi/scene.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "support/rng.h"
#include "support/table.h"

using namespace rif;
namespace kernels = linalg::kernels;

namespace {

/// Consumed results land here so the optimizer cannot delete a timed loop.
volatile double g_sink = 0.0;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Nanoseconds per call: repeat `fn` until `budget_s` of wall time.
double time_ns(double budget_s, const std::function<void()>& fn) {
  fn();  // warm up (first-touch, caches)
  std::uint64_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    for (int k = 0; k < 32; ++k) fn();
    iters += 32;
    elapsed = seconds_since(t0);
  } while (elapsed < budget_s);
  return elapsed * 1e9 / static_cast<double>(iters);
}

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(0.05, 0.9));
  return v;
}

struct KernelRow {
  std::string name;
  int bands = 0;
  double scalar_ns = 0.0;
  double simd_ns = 0.0;
  [[nodiscard]] double speedup() const {
    return simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0;
  }
};

/// One candidate against kMembers set members: the any_within scan. The
/// scalar form is the seed's member-at-a-time AoS dot; the SIMD form is
/// the 8-member band-major pack kernel.
KernelRow bench_screen(int bands, double budget_s) {
  constexpr int kMembers = 512;
  const auto members =
      random_floats(static_cast<std::size_t>(kMembers) * bands, 11);
  const auto pixel = random_floats(static_cast<std::size_t>(bands), 12);
  std::vector<double> inv_norms(kMembers);
  for (int m = 0; m < kMembers; ++m) {
    const float* mem = members.data() + static_cast<std::size_t>(m) * bands;
    inv_norms[m] = 1.0 / std::sqrt(kernels::scalar::dot(mem, mem, bands));
  }
  // Band-major 8-member blocks (the UniqueSet pack layout).
  constexpr int kLanes = kernels::kScreenLanes;
  std::vector<float> pack(members.size());
  for (int m = 0; m < kMembers; ++m) {
    for (int b = 0; b < bands; ++b) {
      pack[(static_cast<std::size_t>(m / kLanes) * bands + b) * kLanes +
           m % kLanes] = members[static_cast<std::size_t>(m) * bands + b];
    }
  }
  const double pixel_inv =
      1.0 / std::sqrt(kernels::scalar::dot(pixel.data(), pixel.data(), bands));
  const double threshold = 2.0;  // cosines are <= 1: scans the whole set

  KernelRow row{"screen", bands, 0.0, 0.0};
  row.scalar_ns = time_ns(budget_s, [&] {
    double sum = 0.0;
    for (int m = 0; m < kMembers; ++m) {
      const double dot = kernels::scalar::dot(
          members.data() + static_cast<std::size_t>(m) * bands,
          pixel.data(), bands);
      const double cosine = dot * inv_norms[m] * pixel_inv;
      if (cosine >= threshold) break;
      sum += cosine;
    }
    g_sink = g_sink + sum;
  });
  row.simd_ns = time_ns(budget_s, [&] {
    double sum = 0.0;
    double dots[kLanes];
    for (int m = 0; m < kMembers; m += kLanes) {
      kernels::dot8(pack.data() +
                        static_cast<std::size_t>(m / kLanes) * bands * kLanes,
                    pixel.data(), bands, dots);
      bool hit = false;
      for (int k = 0; k < kLanes; ++k) {
        const double cosine = dots[k] * inv_norms[m + k] * pixel_inv;
        if (cosine >= threshold) {
          hit = true;
          break;
        }
        sum += cosine;
      }
      if (hit) break;
    }
    g_sink = g_sink + sum;
  });
  return row;
}

/// One packed-triangle moment sweep over a centered 32-pixel block (the
/// MomentAccumulator::add_block / CovarianceAccumulator::add_block core).
KernelRow bench_moment(int bands, double budget_s) {
  constexpr int kRows = 32;
  Rng rng(21);
  std::vector<double> cols(static_cast<std::size_t>(bands) * kRows);
  for (auto& v : cols) v = rng.uniform(-0.5, 0.5);
  std::vector<double> upper(
      static_cast<std::size_t>(bands) * (bands + 1) / 2, 0.0);

  KernelRow row{"moment", bands, 0.0, 0.0};
  row.scalar_ns = time_ns(budget_s, [&] {
    kernels::scalar::rank_k_update(upper.data(), cols.data(), bands, kRows);
    g_sink = g_sink + upper[0];
  });
  std::fill(upper.begin(), upper.end(), 0.0);
  row.simd_ns = time_ns(budget_s, [&] {
    kernels::rank_k_update(upper.data(), cols.data(), bands, kRows);
    g_sink = g_sink + upper[0];
  });
  return row;
}

/// Spectral-angle dot + squared norms (the screening norm pass).
KernelRow bench_dot_norm(int bands, double budget_s) {
  const auto x = random_floats(static_cast<std::size_t>(bands), 31);
  const auto y = random_floats(static_cast<std::size_t>(bands), 32);
  KernelRow row{"dot_norm", bands, 0.0, 0.0};
  row.scalar_ns = time_ns(budget_s, [&] {
    double d, nx, ny;
    kernels::scalar::dot_norm(x.data(), y.data(), bands, &d, &nx, &ny);
    g_sink = g_sink + d + nx + ny;
  });
  row.simd_ns = time_ns(budget_s, [&] {
    double d, nx, ny;
    kernels::dot_norm(x.data(), y.data(), bands, &d, &nx, &ny);
    g_sink = g_sink + d + nx + ny;
  });
  return row;
}

/// Truncated PCT projection of a 64-pixel block into 3 components.
KernelRow bench_project(int bands, double budget_s) {
  constexpr int kComps = 3;
  constexpr int kPixels = 64;
  Rng rng(41);
  linalg::Matrix t(kComps, bands);
  for (int c = 0; c < kComps; ++c) {
    for (int b = 0; b < bands; ++b) t(c, b) = rng.uniform(-1.0, 1.0);
  }
  const std::vector<double> bias(kComps, 0.4);
  const auto pixels =
      random_floats(static_cast<std::size_t>(kPixels) * bands, 42);
  std::vector<float> out(static_cast<std::size_t>(kPixels) * kComps);

  KernelRow row{"project", bands, 0.0, 0.0};
  row.scalar_ns = time_ns(budget_s, [&] {
    for (int p = 0; p < kPixels; ++p) {
      kernels::scalar::project(t.data(), kComps, bands, bias.data(),
                               pixels.data() + static_cast<std::size_t>(p) *
                                                   bands,
                               out.data() + static_cast<std::size_t>(p) *
                                                kComps);
    }
    g_sink = g_sink + out[0];
  });
  row.simd_ns = time_ns(budget_s, [&] {
    for (int p = 0; p < kPixels; ++p) {
      kernels::project(t.data(), kComps, bands, bias.data(),
                       pixels.data() + static_cast<std::size_t>(p) * bands,
                       out.data() + static_cast<std::size_t>(p) * kComps);
    }
    g_sink = g_sink + out[0];
  });
  return row;
}

/// End-to-end single-thread wall time of the two shared-memory engines on
/// a spectrally rich scene — the carried-through effect of the kernels.
struct EngineTimes {
  int width = 0, height = 0, bands = 0, tiles = 0;
  double two_pass_ms = 0.0;
  double fused_ms = 0.0;
};

EngineTimes bench_engines(bool smoke) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = smoke ? 32 : 48;
  scene_cfg.height = smoke ? 32 : 48;
  scene_cfg.bands = smoke ? 32 : 105;
  scene_cfg.noise_sigma = 0.02;
  const auto scene = hsi::generate_scene(scene_cfg);

  core::ParallelPctConfig config;
  config.threads = 1;  // single-thread: isolates kernel speed
  config.tiles = 8;
  config.pct.screening_threshold = 0.012;

  EngineTimes times;
  times.width = scene_cfg.width;
  times.height = scene_cfg.height;
  times.bands = scene_cfg.bands;
  times.tiles = config.tiles;
  core::ThreadPool pool(config.threads);
  const int reps = smoke ? 1 : 3;
  double best_two = 1e300, best_fused = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    const auto a = core::fuse_parallel(scene.cube, pool, config);
    best_two = std::min(best_two, seconds_since(t0) * 1e3);
    g_sink = g_sink + static_cast<double>(a.unique_set_size);
    t0 = std::chrono::steady_clock::now();
    const auto b = core::fuse_parallel_fused(scene.cube, pool, config);
    best_fused = std::min(best_fused, seconds_since(t0) * 1e3);
    g_sink = g_sink + static_cast<double>(b.unique_set_size);
  }
  times.two_pass_ms = best_two;
  times.fused_ms = best_fused;
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double budget_s = smoke ? 0.01 : 0.2;

  std::printf("=== Fusion kernel microbenchmarks ===\n");
  std::printf("backend: %s (dispatched) vs scalar reference%s\n\n",
              kernels::backend(),
              kernels::simd_enabled()
                  ? ""
                  : "  [RIF_DISABLE_SIMD or no vector ISA: expect ~1x]");

  std::vector<KernelRow> rows;
  for (const int bands : {32, 105, 210}) {
    rows.push_back(bench_screen(bands, budget_s));
    rows.push_back(bench_moment(bands, budget_s));
    rows.push_back(bench_dot_norm(bands, budget_s));
    rows.push_back(bench_project(bands, budget_s));
  }

  Table table({"kernel", "bands", "scalar(ns)", "simd(ns)", "speedup"});
  for (const auto& r : rows) {
    table.add_row({r.name, strf("%d", r.bands), strf("%.1f", r.scalar_ns),
                   strf("%.1f", r.simd_ns), strf("%.2fx", r.speedup())});
  }
  table.print();

  const EngineTimes engines = bench_engines(smoke);
  std::printf("\nend-to-end (1 thread, %dx%dx%d, %d tiles): "
              "two-pass %.1f ms, fused %.1f ms\n",
              engines.width, engines.height, engines.bands, engines.tiles,
              engines.two_pass_ms, engines.fused_ms);

  // The acceptance bar: screening and moment kernels >=2x at >=32 bands.
  if (kernels::simd_enabled() && !smoke) {
    bool met = true;
    for (const auto& r : rows) {
      if ((r.name == "screen" || r.name == "moment") && r.speedup() < 2.0) {
        std::printf("NOTE: %s @%d bands below 2x (%.2fx)\n", r.name.c_str(),
                    r.bands, r.speedup());
        met = false;
      }
    }
    std::printf("acceptance (screen+moment >=2x): %s\n",
                met ? "MET" : "NOT MET");
  }

  std::FILE* out = std::fopen("BENCH_kernels.json", "w");
  if (out == nullptr) {
    std::printf("cannot write BENCH_kernels.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"kernels\",\n");
  std::fprintf(out, "  \"backend\": \"%s\",\n", kernels::backend());
  std::fprintf(out, "  \"simd\": %s,\n",
               kernels::simd_enabled() ? "true" : "false");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"bands\": %d, \"scalar_ns\": %.2f, "
                 "\"simd_ns\": %.2f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.bands, r.scalar_ns, r.simd_ns, r.speedup(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"engines\": {\"scene\": \"%dx%dx%d\", \"threads\": 1, "
               "\"tiles\": %d, \"two_pass_ms\": %.3f, \"fused_ms\": %.3f}\n",
               engines.width, engines.height, engines.bands, engines.tiles,
               engines.two_pass_ms, engines.fused_ms);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_kernels.json\n");
  return 0;
}
