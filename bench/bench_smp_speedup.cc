// Shared-memory speed-up (paper §4 text claim).
//
// "On a shared memory system, the concurrent algorithm presented here
// operates within 5% of linear speedup on a wide range of problem sizes
// and machine sizes. The advantage ... is that no communication overhead
// [is] involved."
//
// Two reproductions:
//  1. The simulated SMP: same job, SmpNetwork transport (fixed ~2 us
//     hand-off, no bandwidth term), P CPUs. The shared-memory variant
//     merges into a shared unique set, so the manager's merge charge is
//     omitted from the critical path by giving the merge a zero-cost
//     network and fast hand-offs.
//  2. A real wall-clock measurement of the thread-pool implementation on
//     this machine (small scene; informative, not calibrated).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "core/parallel/parallel_pct.h"
#include "hsi/scene.h"

using namespace rif;

int main() {
  std::printf("=== SMP speed-up (paper SS4 text) ===\n\n");
  std::printf("--- simulated shared-memory machine, 320x320x105 ---\n");
  Table sim_table({"P", "time(s)", "speedup", "eff(%)"});
  double t1 = 0.0;
  for (const int p : {1, 2, 4, 8, 16}) {
    core::FusionJobConfig config = bench::paper_testbed(p);
    config.network = core::NetworkKind::kSmp;
    // On shared memory the unique-set merge is a concurrent insertion into
    // a shared structure, not a serialized manager step.
    config.cost.merge_cost_scale = 1.0 / p;
    const core::FusionReport r = run_fusion_job(config);
    if (!r.completed) {
      std::printf("P=%d did not complete!\n", p);
      return 1;
    }
    if (p == 1) t1 = r.elapsed_seconds;
    const double speedup = t1 / r.elapsed_seconds;
    sim_table.add_row({strf("%d", p), strf("%.1f", r.elapsed_seconds),
                       strf("%.2f", speedup),
                       strf("%.0f", 100.0 * speedup / p)});
  }
  sim_table.print();
  std::printf("paper: within 5%% of linear on shared memory.\n\n");

  std::printf("--- real thread-pool implementation on this host ---\n");
  hsi::SceneConfig scfg;
  scfg.width = 320;
  scfg.height = 320;
  scfg.bands = 105;
  scfg.seed = 4;
  const hsi::Scene scene = hsi::generate_scene(scfg);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  Table real_table({"threads", "wall(ms)", "speedup"});
  double base_ms = 0.0;
  for (int threads = 1; threads <= std::min(hw, 8); threads *= 2) {
    core::ParallelPctConfig pcfg;
    pcfg.threads = threads;
    pcfg.tiles = 32;
    pcfg.cov_shards = 8;
    pcfg.parallel_merge = true;  // the shared-memory variant's merge
    const auto start = std::chrono::steady_clock::now();
    const auto result = core::fuse_parallel(scene.cube, pcfg);
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (threads == 1) base_ms = ms;
    real_table.add_row({strf("%d", threads), strf("%.0f", ms),
                        strf("%.2f", base_ms / ms)});
    (void)result;
  }
  real_table.print();
  std::printf("(wall-clock on this host; shape, not calibrated seconds)\n");
  return 0;
}
