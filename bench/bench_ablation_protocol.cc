// Ablation: resiliency protocol parameters.
//
// Two sweeps on the paper testbed with a single mid-run host strike:
//  1. replication level 1..4 — overhead vs. survivable simultaneous
//     failures (level 1 with regeneration cannot survive at all: there is
//     no surviving replica to clone);
//  2. failure-detection timeout — recovery latency vs. false-positive
//     safety margin (shorter timeouts find the failure sooner but cost
//     heartbeat bandwidth and risk confusing slow hosts with dead ones).
#include <cstdio>

#include "bench/bench_util.h"

using namespace rif;

int main() {
  std::printf("=== Ablation: resiliency protocol parameters ===\n");
  std::printf("8 workers, 320x320x105 cube, strike on one worker host at "
              "t=20s\n\n");

  std::printf("--- replication level (failure timeout 1 s) ---\n");
  Table rep_table({"level", "completed", "time(s)", "vs level 2",
                   "heartbeats", "acks"});
  double t2 = 0.0;
  for (int level = 1; level <= 4; ++level) {
    core::FusionJobConfig config = bench::paper_testbed(8);
    config.resilient = true;
    config.replication = level;
    config.runtime.failure_timeout = from_seconds(1);
    config.failures = {{from_seconds(20), 3, -1}};
    config.deadline = from_seconds(4000);
    const core::FusionReport r = run_fusion_job(config);
    if (level == 2 && r.completed) t2 = r.elapsed_seconds;
    rep_table.add_row(
        {strf("%d", level), r.completed ? "yes" : "NO",
         r.completed ? strf("%.1f", r.elapsed_seconds) : "-",
         (r.completed && t2 > 0)
             ? strf("%.2fx", r.elapsed_seconds / t2)
             : "-",
         strf("%llu",
              static_cast<unsigned long long>(r.protocol.heartbeats)),
         strf("%llu", static_cast<unsigned long long>(r.protocol.acks))});
  }
  rep_table.print();

  std::printf("\n--- failure-detection timeout (replication 2) ---\n");
  Table det_table({"timeout(ms)", "completed", "time(s)", "heartbeats",
                   "retransmits"});
  for (const double timeout_ms : {250.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    core::FusionJobConfig config = bench::paper_testbed(8);
    config.resilient = true;
    config.replication = 2;
    config.runtime.failure_timeout = from_millis(timeout_ms);
    config.runtime.heartbeat_period = from_millis(timeout_ms / 4.0);
    config.failures = {{from_seconds(20), 3, -1}};
    config.deadline = from_seconds(4000);
    const core::FusionReport r = run_fusion_job(config);
    det_table.add_row(
        {strf("%.0f", timeout_ms), r.completed ? "yes" : "NO",
         r.completed ? strf("%.1f", r.elapsed_seconds) : "-",
         strf("%llu",
              static_cast<unsigned long long>(r.protocol.heartbeats)),
         strf("%llu",
              static_cast<unsigned long long>(r.protocol.retransmits))});
  }
  det_table.print();

  std::printf(
      "\nexpected: level 1 cannot regenerate (no survivor) and fails; cost\n"
      "grows with level while extra levels only pay off under heavier\n"
      "attack; detection timeout trades heartbeat volume against recovery\n"
      "promptness, with little total-time effect when strikes are rare.\n");
  return 0;
}
