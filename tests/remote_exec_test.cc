// Real-transport execution vs the sim oracle: the same job, sharded across
// in-process workers speaking the socket protocol over socketpairs, must
// produce the exact bytes of the virtual-time run and of the shared-memory
// engine — including when a worker dies mid-job and its tiles re-queue.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include "cluster/remote_pool.h"
#include "core/distributed/fusion_job.h"
#include "core/distributed/messages.h"
#include "core/distributed/shard_ops.h"
#include "core/parallel/parallel_pct.h"
#include "core/pct.h"
#include "hsi/scene.h"
#include "scp/wire.h"
#include "service/remote_exec.h"

namespace rif::service {
namespace {

hsi::Scene test_scene(int size = 32, int bands = 16, std::uint64_t seed = 77) {
  hsi::SceneConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.bands = bands;
  cfg.seed = seed;
  return hsi::generate_scene(cfg);
}

core::PctResult reference_result(const hsi::Scene& scene, int shards,
                                 int tiles) {
  core::ParallelPctConfig pcfg;
  pcfg.threads = shards;  // fixes the covariance shard count
  pcfg.tiles = tiles;
  return core::fuse_parallel(scene.cube, pcfg);
}

TEST(RemoteExecTest, MatchesSimOracleAndSharedMemoryBitExact) {
  const auto scene = test_scene();
  const int workers = 3;
  const int total_tiles = 6;

  cluster::RemoteWorkerPool pool;
  pool.start(/*first_node_id=*/100);
  for (int i = 0; i < workers; ++i) pool.spawn_local_worker();
  ASSERT_EQ(pool.wait_for_workers(workers, 10.0), workers);

  RemoteExecParams params;
  params.cube = &scene.cube;
  params.total_tiles = total_tiles;
  params.job_id = 1;
  const RemoteExecResult real =
      execute_remote_job(pool, {0, 1, 2}, params);
  ASSERT_TRUE(real.completed);
  EXPECT_EQ(real.worker_disconnects, 0);

  // Oracle 1: the shared-memory engine with the same tile/shard counts.
  const core::PctResult ref = reference_result(scene, workers, total_tiles);
  EXPECT_EQ(real.composite.data, ref.composite.data);
  EXPECT_EQ(real.unique_set_size, ref.unique_set_size);
  ASSERT_EQ(real.eigenvalues.size(), ref.eigenvalues.size());
  for (std::size_t i = 0; i < ref.eigenvalues.size(); ++i) {
    EXPECT_DOUBLE_EQ(real.eigenvalues[i], ref.eigenvalues[i]);
  }

  // Oracle 2: the virtual-time transport running the same actor protocol.
  core::FusionJobConfig sim;
  sim.mode = core::ExecutionMode::kFull;
  sim.cube = &scene.cube;
  sim.shape = {scene.cube.width(), scene.cube.height(), scene.cube.bands()};
  sim.workers = workers;
  sim.tiles_per_worker = total_tiles / workers;
  sim.deadline = from_seconds(3000);
  const core::FusionReport simr = core::run_fusion_job(sim);
  ASSERT_TRUE(simr.completed);
  EXPECT_EQ(real.composite.data, simr.outcome.composite.data);
  EXPECT_EQ(real.unique_set_size, simr.outcome.unique_set_size);

  pool.stop();
}

/// A worker that follows the protocol until it has screened `die_after`
/// tiles, then drops the connection without a goodbye — a process crash as
/// the coordinator sees it.
void crashy_worker(int fd, int die_after) {
  net::SocketClient client;
  client.adopt(fd);
  scp::WireEnvelope hello;
  hello.kind = scp::FrameKind::kHello;
  hello.payload = scp::HelloBody{}.encode();
  ASSERT_TRUE(client.send_frame(hello.encode()));

  scp::JobStartBody job;
  int screened = 0;
  std::vector<std::uint8_t> frame;
  while (client.read_frame(frame)) {
    const scp::WireEnvelope env = scp::WireEnvelope::decode(frame);
    if (env.kind == scp::FrameKind::kJobStart) {
      job = scp::JobStartBody::decode(env.payload);
      scp::WireEnvelope req;
      req.kind = scp::FrameKind::kApp;
      req.msg_type = core::kRequestWork;
      ASSERT_TRUE(client.send_frame(req.encode()));
      continue;
    }
    if (env.kind != scp::FrameKind::kApp) continue;
    const scp::Message msg = env.to_message();
    if (msg.type != core::kTileAssign) continue;
    const core::TileAssignMsg assign = core::TileAssignMsg::decode(msg);
    const core::ScreenResultMsg result = core::screen_shard(
        assign.tile, assign.data.data(), job.screening_threshold);
    scp::WireEnvelope out;
    out.kind = scp::FrameKind::kApp;
    out.msg_type = core::kScreenResult;
    out.payload = result.encode(0).payload;
    ASSERT_TRUE(client.send_frame(out.encode()));
    if (++screened >= die_after) break;  // crash: no goodbye, no colour
    scp::WireEnvelope req;
    req.kind = scp::FrameKind::kApp;
    req.msg_type = core::kRequestWork;
    ASSERT_TRUE(client.send_frame(req.encode()));
  }
  client.close();
}

TEST(RemoteExecTest, WorkerCrashMidJobRequeuesAndStillMatches) {
  const auto scene = test_scene();
  const int total_tiles = 6;

  cluster::RemoteWorkerPool pool;
  pool.start(/*first_node_id=*/100);
  pool.spawn_local_worker();
  pool.spawn_local_worker();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  pool.adopt_fd(sv[0]);
  std::thread crashy(crashy_worker, sv[1], /*die_after=*/1);
  ASSERT_EQ(pool.wait_for_workers(3, 10.0), 3);

  RemoteExecParams params;
  params.cube = &scene.cube;
  params.total_tiles = total_tiles;
  params.job_id = 2;
  const RemoteExecResult real =
      execute_remote_job(pool, {0, 1, 2}, params);
  crashy.join();
  ASSERT_TRUE(real.completed);
  EXPECT_EQ(real.worker_disconnects, 1);
  EXPECT_GE(real.tiles_requeued, 1);
  EXPECT_EQ(real.shards, 3);  // fixed at job start, despite the crash

  // The kill must not change a single byte: merge orders are keyed by
  // tile/shard index, not by which worker answered.
  const core::PctResult ref = reference_result(scene, 3, total_tiles);
  EXPECT_EQ(real.composite.data, ref.composite.data);
  EXPECT_EQ(real.unique_set_size, ref.unique_set_size);

  pool.stop();
}

TEST(RemoteExecTest, AllWorkersDeadReportsFailureForFallback) {
  const auto scene = test_scene(16, 8);
  cluster::RemoteWorkerPool pool;
  pool.start(/*first_node_id=*/100);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  pool.adopt_fd(sv[0]);
  std::thread crashy(crashy_worker, sv[1], /*die_after=*/1);
  ASSERT_EQ(pool.wait_for_workers(1, 10.0), 1);

  RemoteExecParams params;
  params.cube = &scene.cube;
  params.total_tiles = 4;
  params.poll_timeout_seconds = 0.2;
  params.deadline_seconds = 5.0;
  const RemoteExecResult real = execute_remote_job(pool, {0}, params);
  crashy.join();
  EXPECT_FALSE(real.completed);  // caller falls back to the host engine
  pool.stop();
}

}  // namespace
}  // namespace rif::service
