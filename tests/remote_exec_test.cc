// Real-transport execution vs the sim oracle: the same job, sharded across
// in-process workers speaking the socket protocol over socketpairs, must
// produce the exact bytes of the virtual-time run and of the shared-memory
// engine — including when a worker dies mid-job and its tiles re-queue.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include "cluster/remote_pool.h"
#include "core/distributed/fusion_job.h"
#include "core/distributed/messages.h"
#include "core/distributed/shard_ops.h"
#include "core/parallel/parallel_pct.h"
#include "core/pct.h"
#include "hsi/scene.h"
#include "scp/wire.h"
#include "service/remote_exec.h"

namespace rif::service {
namespace {

hsi::Scene test_scene(int size = 32, int bands = 16, std::uint64_t seed = 77) {
  hsi::SceneConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.bands = bands;
  cfg.seed = seed;
  return hsi::generate_scene(cfg);
}

core::PctResult reference_result(const hsi::Scene& scene, int shards,
                                 int tiles) {
  core::ParallelPctConfig pcfg;
  pcfg.threads = shards;  // fixes the covariance shard count
  pcfg.tiles = tiles;
  return core::fuse_parallel(scene.cube, pcfg);
}

TEST(RemoteExecTest, MatchesSimOracleAndSharedMemoryBitExact) {
  const auto scene = test_scene();
  const int workers = 3;
  const int total_tiles = 6;

  cluster::RemoteWorkerPool pool;
  pool.start(/*first_node_id=*/100);
  for (int i = 0; i < workers; ++i) pool.spawn_local_worker();
  ASSERT_EQ(pool.wait_for_workers(workers, 10.0), workers);

  RemoteExecParams params;
  params.cube = &scene.cube;
  params.total_tiles = total_tiles;
  params.job_id = 1;
  const RemoteExecResult real =
      execute_remote_job(pool, {0, 1, 2}, params);
  ASSERT_TRUE(real.completed);
  EXPECT_EQ(real.worker_disconnects, 0);

  // Oracle 1: the shared-memory engine with the same tile/shard counts.
  const core::PctResult ref = reference_result(scene, workers, total_tiles);
  EXPECT_EQ(real.composite.data, ref.composite.data);
  EXPECT_EQ(real.unique_set_size, ref.unique_set_size);
  ASSERT_EQ(real.eigenvalues.size(), ref.eigenvalues.size());
  for (std::size_t i = 0; i < ref.eigenvalues.size(); ++i) {
    EXPECT_DOUBLE_EQ(real.eigenvalues[i], ref.eigenvalues[i]);
  }

  // Oracle 2: the virtual-time transport running the same actor protocol.
  core::FusionJobConfig sim;
  sim.mode = core::ExecutionMode::kFull;
  sim.cube = &scene.cube;
  sim.shape = {scene.cube.width(), scene.cube.height(), scene.cube.bands()};
  sim.workers = workers;
  sim.tiles_per_worker = total_tiles / workers;
  sim.deadline = from_seconds(3000);
  const core::FusionReport simr = core::run_fusion_job(sim);
  ASSERT_TRUE(simr.completed);
  EXPECT_EQ(real.composite.data, simr.outcome.composite.data);
  EXPECT_EQ(real.unique_set_size, simr.outcome.unique_set_size);

  pool.stop();
}

scp::WireEnvelope app_frame(std::uint64_t job_tag, std::uint32_t msg_type,
                            std::vector<std::uint8_t> payload = {}) {
  scp::WireEnvelope env;
  env.kind = scp::FrameKind::kApp;
  env.seq = job_tag;
  env.msg_type = msg_type;
  env.payload = std::move(payload);
  return env;
}

/// A worker that follows the protocol until it has screened `die_after`
/// tiles, then drops the connection without a goodbye — a process crash as
/// the coordinator sees it. With `hostile`, it first injects the frames a
/// buggy or malicious peer could produce: out-of-range tile indices, a
/// colour tile tagged with another job's id, and unsolicited CovSums. All
/// must be dropped without corrupting the job.
///
/// Tiles are pull-based, so on a loaded machine the other workers can drain
/// every tile before this thread is ever scheduled — and a crashy worker
/// that never held a tile has nothing to crash with. `pre_request_job_id`
/// sends a correctly-tagged kRequestWork right behind the hello, before the
/// job even starts, so a tile assignment is waiting for it at job start.
/// Running dry (kNoMoreTiles) is a crash trigger too, never a reason to
/// keep reading forever.
void crashy_worker(int fd, int die_after, int total_tiles = 0,
                   bool hostile = false, int pre_request_job_id = -1) {
  net::SocketClient client;
  client.adopt(fd);
  scp::WireEnvelope hello;
  hello.kind = scp::FrameKind::kHello;
  hello.payload = scp::HelloBody{}.encode();
  ASSERT_TRUE(client.send_frame(hello.encode()));
  if (pre_request_job_id >= 0) {
    ASSERT_TRUE(client.send_frame(
        app_frame(static_cast<std::uint64_t>(pre_request_job_id),
                  core::kRequestWork)
            .encode()));
  }

  scp::JobStartBody job;
  int screened = 0;
  std::vector<std::uint8_t> frame;
  while (client.read_frame(frame)) {
    const scp::WireEnvelope env = scp::WireEnvelope::decode(frame);
    if (env.kind == scp::FrameKind::kJobStart) {
      job = scp::JobStartBody::decode(env.payload);
      const auto tag = static_cast<std::uint64_t>(job.job_id);
      if (hostile) {
        // Screen result for a tile index far past the job's tile count.
        core::ScreenResultMsg oob;
        oob.tile = {999, 0, 1, job.width, job.bands};
        oob.vectors.assign(static_cast<std::size_t>(job.bands), 0.5f);
        oob.unique_count = 1;
        ASSERT_TRUE(client.send_frame(
            app_frame(tag, core::kScreenResult, oob.encode(0).payload)
                .encode()));
        // Colour tiles with out-of-range indices, correctly tagged.
        for (const int idx : {-3, 999}) {
          core::ColorTileMsg oob_color;
          oob_color.tile = {idx, 0, 1, job.width, job.bands};
          oob_color.rgb.assign(static_cast<std::size_t>(job.width) * 3, 0xAB);
          ASSERT_TRUE(client.send_frame(
              app_frame(tag, core::kColorTile, oob_color.encode(0).payload)
                  .encode()));
        }
        // A colour tile with plausible geometry for tile 0 but another
        // job's tag — garbage pixels that must never reach the composite.
        const auto tiles = hsi::partition_rows(
            {job.width, job.height, job.bands}, total_tiles);
        core::ColorTileMsg stale;
        stale.tile = core::WireTile::from(tiles[0]);
        stale.rgb.assign(static_cast<std::size_t>(tiles[0].pixels()) * 3,
                         0xAB);
        ASSERT_TRUE(client.send_frame(
            app_frame(tag + 1000, core::kColorTile, stale.encode(0).payload)
                .encode()));
        // Unsolicited covariance sums: one in range, one far out.
        for (const std::uint64_t s : {std::uint64_t{0}, std::uint64_t{999}}) {
          core::CovSumMsg bogus;
          bogus.shard_index = s;
          bogus.accumulator = {1, 2, 3};
          ASSERT_TRUE(client.send_frame(
              app_frame(tag, core::kCovSum, bogus.encode(0).payload)
                  .encode()));
        }
      }
      ASSERT_TRUE(
          client.send_frame(app_frame(tag, core::kRequestWork).encode()));
      continue;
    }
    if (env.kind != scp::FrameKind::kApp) continue;
    const auto tag = static_cast<std::uint64_t>(job.job_id);
    const scp::Message msg = env.to_message();
    if (msg.type == core::kNoMoreTiles) break;  // starved: crash empty-handed
    if (msg.type != core::kTileAssign) continue;
    const core::TileAssignMsg assign = core::TileAssignMsg::decode(msg);
    const core::ScreenResultMsg result = core::screen_shard(
        assign.tile, assign.data.data(), job.screening_threshold);
    ASSERT_TRUE(client.send_frame(
        app_frame(tag, core::kScreenResult, result.encode(0).payload)
            .encode()));
    if (++screened >= die_after) break;  // crash: no goodbye, no colour
    ASSERT_TRUE(
        client.send_frame(app_frame(tag, core::kRequestWork).encode()));
  }
  client.close();
}

TEST(RemoteExecTest, WorkerCrashMidJobRequeuesAndStillMatches) {
  const auto scene = test_scene();
  const int total_tiles = 6;

  cluster::RemoteWorkerPool pool;
  pool.start(/*first_node_id=*/100);
  pool.spawn_local_worker();
  pool.spawn_local_worker();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  pool.adopt_fd(sv[0]);
  std::thread crashy([fd = sv[1]] {
    crashy_worker(fd, /*die_after=*/1, /*total_tiles=*/0, /*hostile=*/false,
                  /*pre_request_job_id=*/2);
  });
  ASSERT_EQ(pool.wait_for_workers(3, 10.0), 3);

  RemoteExecParams params;
  params.cube = &scene.cube;
  params.total_tiles = total_tiles;
  params.job_id = 2;
  const RemoteExecResult real =
      execute_remote_job(pool, {0, 1, 2}, params);
  ASSERT_TRUE(real.completed);
  EXPECT_EQ(real.worker_disconnects, 1);
  EXPECT_GE(real.tiles_requeued, 1);
  EXPECT_EQ(real.shards, 3);  // fixed at job start, despite the crash

  // The kill must not change a single byte: merge orders are keyed by
  // tile/shard index, not by which worker answered.
  const core::PctResult ref = reference_result(scene, 3, total_tiles);
  EXPECT_EQ(real.composite.data, ref.composite.data);
  EXPECT_EQ(real.unique_set_size, ref.unique_set_size);

  pool.stop();  // closes every session, so a blocked worker always unblocks
  crashy.join();
}

TEST(RemoteExecTest, HostileAndStaleFramesAreDroppedNotTrusted) {
  const auto scene = test_scene();
  const int total_tiles = 6;

  cluster::RemoteWorkerPool pool;
  pool.start(/*first_node_id=*/100);
  pool.spawn_local_worker();
  pool.spawn_local_worker();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  pool.adopt_fd(sv[0]);
  std::thread hostile([fd = sv[1]] {
    crashy_worker(fd, /*die_after=*/1, /*total_tiles=*/6, /*hostile=*/true,
                  /*pre_request_job_id=*/7);
  });
  ASSERT_EQ(pool.wait_for_workers(3, 10.0), 3);

  RemoteExecParams params;
  params.cube = &scene.cube;
  params.total_tiles = total_tiles;
  params.job_id = 7;
  const RemoteExecResult real =
      execute_remote_job(pool, {0, 1, 2}, params);
  ASSERT_TRUE(real.completed);

  // None of the injected frames may leave a trace: the composite must be
  // the exact bytes of the clean reference run.
  const core::PctResult ref = reference_result(scene, 3, total_tiles);
  EXPECT_EQ(real.composite.data, ref.composite.data);
  EXPECT_EQ(real.unique_set_size, ref.unique_set_size);

  pool.stop();
  hostile.join();
}

TEST(RemoteExecTest, MalformedEnvelopeClosesSessionNotProcess) {
  cluster::RemoteWorkerPool pool;
  pool.start(/*first_node_id=*/100);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  pool.adopt_fd(sv[0]);

  net::SocketClient client;
  client.adopt(sv[1]);
  scp::WireEnvelope hello;
  hello.kind = scp::FrameKind::kHello;
  hello.payload = scp::HelloBody{}.encode();
  ASSERT_TRUE(client.send_frame(hello.encode()));
  ASSERT_EQ(pool.wait_for_workers(1, 10.0), 1);

  // Well-framed but not a decodable envelope: the pool must close this
  // session (not abort the poll thread, which serves every worker).
  ASSERT_TRUE(client.send_frame({0xDE, 0xAD, 0xBE}));
  const auto ev = pool.poll_event(10.0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, cluster::RemoteWorkerPool::Event::Kind::kClosed);
  EXPECT_EQ(ev->worker, 0);
  EXPECT_FALSE(pool.alive(0));
  client.close();
  pool.stop();
}

TEST(RemoteExecTest, AllWorkersDeadReportsFailureForFallback) {
  const auto scene = test_scene(16, 8);
  cluster::RemoteWorkerPool pool;
  pool.start(/*first_node_id=*/100);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  pool.adopt_fd(sv[0]);
  std::thread crashy([fd = sv[1]] { crashy_worker(fd, /*die_after=*/1); });
  ASSERT_EQ(pool.wait_for_workers(1, 10.0), 1);

  RemoteExecParams params;
  params.cube = &scene.cube;
  params.total_tiles = 4;
  params.poll_timeout_seconds = 0.2;
  params.deadline_seconds = 5.0;
  const RemoteExecResult real = execute_remote_job(pool, {0}, params);
  EXPECT_FALSE(real.completed);  // caller falls back to the host engine
  pool.stop();
  crashy.join();
}

}  // namespace
}  // namespace rif::service
