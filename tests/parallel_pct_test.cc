#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/parallel/parallel_pct.h"
#include "core/parallel/thread_pool.h"
#include "hsi/scene.h"

namespace rif::core {
namespace {

hsi::Scene test_scene(int size = 48, int bands = 20, std::uint64_t seed = 21) {
  hsi::SceneConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.bands = bands;
  cfg.seed = seed;
  return hsi::generate_scene(cfg);
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelTasksRunAll) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  pool.parallel_tasks(10, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_tasks(4,
                                   [](int i) {
                                     if (i == 2) throw std::runtime_error("x");
                                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::int64_t, std::int64_t) { FAIL(); });
  pool.parallel_tasks(0, [](int) { FAIL(); });
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_tasks(8, [&](int) { ++count; });
  }
  EXPECT_EQ(count.load(), 40);
}

// Regression: parallel_tasks used to deadlock when called from a worker
// thread — the caller slept on a condition variable while occupying the
// only worker slot. The help-while-waiting pool must run this to
// completion even when every level of nesting goes through the single
// worker.
TEST(ThreadPoolTest, NestedParallelismOnSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> leaf{0};
  pool.parallel_tasks(3, [&](int) {
    pool.parallel_for(50, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) ++leaf;
    });
  });
  EXPECT_EQ(leaf.load(), 150);
}

TEST(ThreadPoolTest, DeeplyNestedTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  pool.parallel_tasks(4, [&](int) {
    pool.parallel_tasks(3, [&](int) {
      pool.parallel_tasks(2, [&](int) { ++leaf; });
    });
  });
  EXPECT_EQ(leaf.load(), 24);
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughOuterGroup) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_tasks(
                   2,
                   [&](int i) {
                     pool.parallel_tasks(2, [&](int j) {
                       if (i == 1 && j == 1) throw std::runtime_error("deep");
                     });
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, IdleSecondsTracksParkedWorkers) {
  ThreadPool pool(2);
  // Workers park immediately: idle grows while the pool sits unused, and
  // in-progress parks are visible at read time (no wake-up needed) — this
  // is what makes interval deltas exact across park boundaries.
  const double idle0 = pool.idle_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const double idle1 = pool.idle_seconds();
  EXPECT_GE(idle1 - idle0, 0.1);  // 2 parked workers x 100 ms, minus slop

  // Saturating work: 3 spin tasks feed both workers AND the helping
  // caller (which always drains the queue too, but is external and never
  // counted), so worker idle accrues at most scheduling slop.
  const double idle2 = pool.idle_seconds();
  pool.parallel_tasks(3, [](int) {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(60);
    while (std::chrono::steady_clock::now() < until) {
    }
  });
  const double idle3 = pool.idle_seconds();
  EXPECT_LE(idle3 - idle2, 0.05);
}

// Concurrent callers from non-pool threads (the FusionService pattern:
// many jobs sharing one pool) must all complete.
TEST(ThreadPoolTest, ConcurrentExternalCallersShareOnePool) {
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      pool.parallel_tasks(8, [&](int) {
        pool.parallel_for(10, [&](std::int64_t lo, std::int64_t hi) {
          leaf += static_cast<int>(hi - lo);
        });
      });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(leaf.load(), 4 * 8 * 10);
}

// --- fuse_parallel ------------------------------------------------------------

TEST(ParallelPctTest, SingleTileMatchesSequentialExactly) {
  const auto scene = test_scene();
  const PctResult seq = fuse(scene.cube);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = 1;       // whole cube as one tile: same screening order
  config.cov_shards = 1;  // same covariance summation grouping
  const PctResult par = fuse_parallel(scene.cube, config);
  EXPECT_EQ(par.composite.data, seq.composite.data);
  EXPECT_EQ(par.unique_set_size, seq.unique_set_size);
  EXPECT_EQ(par.eigenvalues, seq.eigenvalues);
}

TEST(ParallelPctTest, ThreadCountDoesNotChangeResult) {
  const auto scene = test_scene();
  ParallelPctConfig config;
  config.tiles = 6;
  config.cov_shards = 4;  // fixed grouping: thread count must not matter
  config.threads = 1;
  const PctResult one = fuse_parallel(scene.cube, config);
  config.threads = 8;
  const PctResult eight = fuse_parallel(scene.cube, config);
  // Same tile decomposition => identical output regardless of threads.
  EXPECT_EQ(one.composite.data, eight.composite.data);
  EXPECT_EQ(one.unique_set_size, eight.unique_set_size);
}

TEST(ParallelPctTest, TiledResultCloseToSequential) {
  // Per-tile screening discovers a slightly different unique set than the
  // global pass, but the fused statistics must stay close.
  const auto scene = test_scene(64, 24, 33);
  const PctResult seq = fuse(scene.cube);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = 8;
  const PctResult par = fuse_parallel(scene.cube, config);
  ASSERT_EQ(par.eigenvalues.size(), seq.eigenvalues.size());
  EXPECT_NEAR(par.eigenvalues[0], seq.eigenvalues[0],
              0.15 * seq.eigenvalues[0]);
  // Composites agree on the vast majority of pixels to within a few levels.
  std::size_t close = 0;
  for (std::size_t i = 0; i < seq.composite.data.size(); ++i) {
    if (std::abs(int(par.composite.data[i]) - int(seq.composite.data[i])) <= 8) {
      ++close;
    }
  }
  EXPECT_GT(static_cast<double>(close) / seq.composite.data.size(), 0.9);
}

TEST(ParallelPctTest, SharedPoolReuse) {
  const auto scene = test_scene(32);
  ThreadPool pool(4);
  ParallelPctConfig config;
  config.tiles = 4;
  const PctResult a = fuse_parallel(scene.cube, pool, config);
  const PctResult b = fuse_parallel(scene.cube, pool, config);
  EXPECT_EQ(a.composite.data, b.composite.data);
}

TEST(ParallelPctTest, OddTileCountIsThreadCountInvariant) {
  const auto scene = test_scene();
  ParallelPctConfig config;
  config.tiles = 7;  // odd: exercises the unpaired trailing set in merges
  config.cov_shards = 3;
  config.threads = 1;
  const PctResult one = fuse_parallel(scene.cube, config);
  config.threads = 8;
  const PctResult eight = fuse_parallel(scene.cube, config);
  EXPECT_EQ(one.composite.data, eight.composite.data);
  EXPECT_EQ(one.unique_set_size, eight.unique_set_size);
  EXPECT_EQ(one.eigenvalues, eight.eigenvalues);
}

TEST(ParallelPctTest, MoreTilesThanRowsClampsToRowCount) {
  // 12 rows, 40 tiles requested: partition_rows emits 12 one-row tiles and
  // the engine must still produce a full-size, valid composite.
  const auto scene = test_scene(12, 16, 5);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = 40;
  const PctResult r = fuse_parallel(scene.cube, config);
  EXPECT_GE(r.unique_set_size, 3u);
  EXPECT_EQ(r.composite.data.size(),
            static_cast<std::size_t>(scene.cube.pixel_count()) * 3);
  const PctResult fused = fuse_parallel_fused(scene.cube, config);
  EXPECT_EQ(fused.composite.data.size(), r.composite.data.size());
}

TEST(ParallelPctTest, ParallelMergeMatchesSequentialFoldStatistics) {
  // The pairwise tree visits members in a different order than the left
  // fold, so the unique set may differ slightly — but the fused statistics
  // must stay close and the output valid.
  const auto scene = test_scene(48, 20, 77);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = 8;
  config.parallel_merge = false;
  const PctResult fold = fuse_parallel(scene.cube, config);
  config.parallel_merge = true;
  const PctResult tree = fuse_parallel(scene.cube, config);
  ASSERT_EQ(tree.eigenvalues.size(), fold.eigenvalues.size());
  EXPECT_NEAR(tree.eigenvalues[0], fold.eigenvalues[0],
              0.15 * fold.eigenvalues[0]);
  EXPECT_EQ(tree.composite.data.size(), fold.composite.data.size());
  // Tree-merge membership is a valid unique set of the same scene: sizes
  // agree to within a few members.
  EXPECT_NEAR(static_cast<double>(tree.unique_set_size),
              static_cast<double>(fold.unique_set_size),
              0.2 * static_cast<double>(fold.unique_set_size) + 3.0);
}

class ParallelTileSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelTileSweep, AllGranularitiesProduceValidOutput) {
  const auto scene = test_scene(40);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = GetParam();
  const PctResult r = fuse_parallel(scene.cube, config);
  EXPECT_GE(r.unique_set_size, 3u);
  EXPECT_EQ(r.composite.data.size(),
            static_cast<std::size_t>(scene.cube.pixel_count()) * 3);
}

INSTANTIATE_TEST_SUITE_P(Tiles, ParallelTileSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40));

// --- fuse_parallel_fused ------------------------------------------------------

TEST(FusedPctTest, SingleTileMatchesSequentialWithinTolerance) {
  // One tile: identical unique set and screening order, so the only
  // difference from fuse() is rounding in the moment correction. Composite
  // bytes may shift by at most one quantisation level.
  const auto scene = test_scene();
  const PctResult seq = fuse(scene.cube);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = 1;
  const PctResult fused = fuse_parallel_fused(scene.cube, config);
  EXPECT_EQ(fused.unique_set_size, seq.unique_set_size);
  ASSERT_EQ(fused.eigenvalues.size(), seq.eigenvalues.size());
  for (std::size_t i = 0; i < seq.eigenvalues.size(); ++i) {
    EXPECT_NEAR(fused.eigenvalues[i], seq.eigenvalues[i],
                1e-9 * std::max(1.0, std::abs(seq.eigenvalues[i])));
  }
  ASSERT_EQ(fused.composite.data.size(), seq.composite.data.size());
  for (std::size_t i = 0; i < seq.composite.data.size(); ++i) {
    ASSERT_LE(std::abs(int(fused.composite.data[i]) -
                       int(seq.composite.data[i])),
              1)
        << "pixel byte " << i;
  }
}

TEST(FusedPctTest, MatchesTwoPassEngineTileForTile) {
  // Same tile count => same screening order and same merged unique set as
  // the two-pass engine; statistics agree to rounding.
  const auto scene = test_scene(64, 24, 33);
  for (const int tiles : {3, 8}) {
    ParallelPctConfig config;
    config.threads = 4;
    config.tiles = tiles;
    const PctResult two_pass = fuse_parallel(scene.cube, config);
    const PctResult fused = fuse_parallel_fused(scene.cube, config);
    EXPECT_EQ(fused.unique_set_size, two_pass.unique_set_size) << tiles;
    EXPECT_GT(two_pass.merge_comparisons, 0u);
    EXPECT_GT(fused.merge_comparisons, 0u);
    ASSERT_EQ(fused.composite.data.size(), two_pass.composite.data.size());
    for (std::size_t i = 0; i < two_pass.composite.data.size(); ++i) {
      ASSERT_LE(std::abs(int(fused.composite.data[i]) -
                         int(two_pass.composite.data[i])),
                1)
          << "tiles=" << tiles << " byte " << i;
    }
  }
}

TEST(FusedPctTest, ThreadCountDoesNotChangeResult) {
  const auto scene = test_scene();
  ParallelPctConfig config;
  config.tiles = 6;
  config.threads = 1;
  const PctResult one = fuse_parallel_fused(scene.cube, config);
  config.threads = 8;
  const PctResult eight = fuse_parallel_fused(scene.cube, config);
  EXPECT_EQ(one.composite.data, eight.composite.data);
  EXPECT_EQ(one.eigenvalues, eight.eigenvalues);
  EXPECT_EQ(one.unique_set_size, eight.unique_set_size);
}

TEST(FusedPctTest, ParallelMergeFlagIsMootForFusedEngine) {
  // The blocked fold already parallelizes the merge while preserving the
  // sequential fold's member order, so the tree-merge flag changes nothing.
  const auto scene = test_scene(48, 20, 77);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = 8;
  config.parallel_merge = false;
  const PctResult off = fuse_parallel_fused(scene.cube, config);
  config.parallel_merge = true;
  const PctResult on = fuse_parallel_fused(scene.cube, config);
  EXPECT_EQ(on.composite.data, off.composite.data);
  EXPECT_EQ(on.unique_set_size, off.unique_set_size);
  EXPECT_GE(off.unique_set_size, 3u);
  // Eigenvalues of a covariance matrix are non-negative (to rounding).
  for (const double ev : off.eigenvalues) EXPECT_GT(ev, -1e-9);
}

TEST(FusedPctTest, SharedPoolNestedJobsProduceIdenticalResults) {
  // Two fused jobs running CONCURRENTLY as tasks of the same pool they fuse
  // on — the FusionService execution pattern. Requires the deadlock-free
  // help-while-waiting pool.
  const auto scene = test_scene(32);
  ParallelPctConfig config;
  config.tiles = 4;
  const PctResult reference = fuse_parallel_fused(scene.cube, config);
  ThreadPool pool(2);
  std::vector<PctResult> results(2);
  pool.parallel_tasks(2, [&](int i) {
    results[i] = fuse_parallel_fused(scene.cube, pool, config);
  });
  for (const auto& r : results) {
    EXPECT_EQ(r.composite.data, reference.composite.data);
    EXPECT_EQ(r.unique_set_size, reference.unique_set_size);
  }
}

}  // namespace
}  // namespace rif::core
