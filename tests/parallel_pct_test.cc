#include <gtest/gtest.h>

#include <atomic>

#include "core/parallel/parallel_pct.h"
#include "core/parallel/thread_pool.h"
#include "hsi/scene.h"

namespace rif::core {
namespace {

hsi::Scene test_scene(int size = 48, int bands = 20, std::uint64_t seed = 21) {
  hsi::SceneConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.bands = bands;
  cfg.seed = seed;
  return hsi::generate_scene(cfg);
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelTasksRunAll) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  pool.parallel_tasks(10, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_tasks(4,
                                   [](int i) {
                                     if (i == 2) throw std::runtime_error("x");
                                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::int64_t, std::int64_t) { FAIL(); });
  pool.parallel_tasks(0, [](int) { FAIL(); });
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_tasks(8, [&](int) { ++count; });
  }
  EXPECT_EQ(count.load(), 40);
}

// --- fuse_parallel ------------------------------------------------------------

TEST(ParallelPctTest, SingleTileMatchesSequentialExactly) {
  const auto scene = test_scene();
  const PctResult seq = fuse(scene.cube);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = 1;       // whole cube as one tile: same screening order
  config.cov_shards = 1;  // same covariance summation grouping
  const PctResult par = fuse_parallel(scene.cube, config);
  EXPECT_EQ(par.composite.data, seq.composite.data);
  EXPECT_EQ(par.unique_set_size, seq.unique_set_size);
  EXPECT_EQ(par.eigenvalues, seq.eigenvalues);
}

TEST(ParallelPctTest, ThreadCountDoesNotChangeResult) {
  const auto scene = test_scene();
  ParallelPctConfig config;
  config.tiles = 6;
  config.cov_shards = 4;  // fixed grouping: thread count must not matter
  config.threads = 1;
  const PctResult one = fuse_parallel(scene.cube, config);
  config.threads = 8;
  const PctResult eight = fuse_parallel(scene.cube, config);
  // Same tile decomposition => identical output regardless of threads.
  EXPECT_EQ(one.composite.data, eight.composite.data);
  EXPECT_EQ(one.unique_set_size, eight.unique_set_size);
}

TEST(ParallelPctTest, TiledResultCloseToSequential) {
  // Per-tile screening discovers a slightly different unique set than the
  // global pass, but the fused statistics must stay close.
  const auto scene = test_scene(64, 24, 33);
  const PctResult seq = fuse(scene.cube);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = 8;
  const PctResult par = fuse_parallel(scene.cube, config);
  ASSERT_EQ(par.eigenvalues.size(), seq.eigenvalues.size());
  EXPECT_NEAR(par.eigenvalues[0], seq.eigenvalues[0],
              0.15 * seq.eigenvalues[0]);
  // Composites agree on the vast majority of pixels to within a few levels.
  std::size_t close = 0;
  for (std::size_t i = 0; i < seq.composite.data.size(); ++i) {
    if (std::abs(int(par.composite.data[i]) - int(seq.composite.data[i])) <= 8) {
      ++close;
    }
  }
  EXPECT_GT(static_cast<double>(close) / seq.composite.data.size(), 0.9);
}

TEST(ParallelPctTest, SharedPoolReuse) {
  const auto scene = test_scene(32);
  ThreadPool pool(4);
  ParallelPctConfig config;
  config.tiles = 4;
  const PctResult a = fuse_parallel(scene.cube, pool, config);
  const PctResult b = fuse_parallel(scene.cube, pool, config);
  EXPECT_EQ(a.composite.data, b.composite.data);
}

class ParallelTileSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelTileSweep, AllGranularitiesProduceValidOutput) {
  const auto scene = test_scene(40);
  ParallelPctConfig config;
  config.threads = 4;
  config.tiles = GetParam();
  const PctResult r = fuse_parallel(scene.cube, config);
  EXPECT_GE(r.unique_set_size, 3u);
  EXPECT_EQ(r.composite.data.size(),
            static_cast<std::size_t>(scene.cube.pixel_count()) * 3);
}

INSTANTIATE_TEST_SUITE_P(Tiles, ParallelTileSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40));

}  // namespace
}  // namespace rif::core
