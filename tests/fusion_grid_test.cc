// Property sweep: every point of the (workers x replication x network)
// configuration grid must complete, be deterministic, and respect basic
// monotonicity (replication never makes the run faster).
#include <gtest/gtest.h>

#include <tuple>

#include "core/distributed/fusion_job.h"

namespace rif::core {
namespace {

using GridParam = std::tuple<int /*workers*/, int /*replication*/,
                             NetworkKind>;

class FusionGridTest : public ::testing::TestWithParam<GridParam> {};

FusionJobConfig grid_config(const GridParam& p) {
  FusionJobConfig config;
  config.mode = ExecutionMode::kCostOnly;
  config.shape = {96, 96, 24};  // small so the grid runs fast
  config.workers = std::get<0>(p);
  config.replication = std::get<1>(p);
  config.resilient = config.replication > 1;
  config.network = std::get<2>(p);
  config.tiles_per_worker = 2;
  config.deadline = from_seconds(100000);
  return config;
}

TEST_P(FusionGridTest, CompletesAndIsDeterministic) {
  const FusionJobConfig config = grid_config(GetParam());
  const FusionReport a = run_fusion_job(config);
  ASSERT_TRUE(a.completed);
  EXPECT_GT(a.elapsed_seconds, 0.0);
  EXPECT_EQ(a.outcome.tiles_colored, a.outcome.tiles_distributed);

  const FusionReport b = run_fusion_job(config);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.protocol.replica_messages, b.protocol.replica_messages);
}

TEST_P(FusionGridTest, ReplicationNeverFaster) {
  const GridParam p = GetParam();
  if (std::get<1>(p) == 1) GTEST_SKIP() << "baseline point";
  const FusionReport replicated = run_fusion_job(grid_config(p));
  GridParam baseline = p;
  std::get<1>(baseline) = 1;
  const FusionReport plain = run_fusion_job(grid_config(baseline));
  ASSERT_TRUE(replicated.completed && plain.completed);
  EXPECT_GE(replicated.elapsed_seconds, plain.elapsed_seconds * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FusionGridTest,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(NetworkKind::kLan,
                                         NetworkKind::kSharedBus,
                                         NetworkKind::kSmp)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      const char* net =
          std::get<2>(info.param) == NetworkKind::kLan        ? "Lan"
          : std::get<2>(info.param) == NetworkKind::kSharedBus ? "Bus"
                                                                : "Smp";
      return "W" + std::to_string(std::get<0>(info.param)) + "R" +
             std::to_string(std::get<1>(info.param)) + net;
    });

}  // namespace
}  // namespace rif::core
