// Tests of the observability subsystem: SpanTracer emission and export,
// the Chrome-trace JSON checker, the MetricsScraper timeline, and the
// leveled logger's job context.
//
// SpanTracer is a process-wide singleton, so every test that emits puts it
// back to (disabled, cleared) — emission is quiescent once disabled, which
// is exactly what clear() requires.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/metrics_scraper.h"
#include "obs/span_tracer.h"
#include "obs/trace_check.h"
#include "runtime/metrics.h"
#include "sim/trace.h"
#include "sim/trace_export.h"
#include "support/log.h"

namespace rif::obs {
namespace {

namespace fs = std::filesystem;

SpanTracer& tracer() { return SpanTracer::instance(); }

void reset_tracer() {
  tracer().set_enabled(false);
  tracer().clear();
}

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

// --- SpanTracer --------------------------------------------------------------

TEST(SpanTracerTest, RecordsSpansInEmissionOrder) {
  reset_tracer();
  tracer().set_enabled(true);
  tracer().begin("outer", 7);
  tracer().begin("inner", 7);
  tracer().instant("tick", 7);
  tracer().counter("queue", 3.0, 7);
  tracer().end("inner", 7);
  tracer().end("outer", 7);
  tracer().set_enabled(false);

  const std::vector<SpanEvent> events = tracer().collect();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[1].phase, Phase::kBegin);
  EXPECT_EQ(events[2].phase, Phase::kInstant);
  EXPECT_EQ(events[3].phase, Phase::kCounter);
  EXPECT_DOUBLE_EQ(events[3].value, 3.0);
  EXPECT_EQ(events[4].phase, Phase::kEnd);
  EXPECT_STREQ(events[5].name, "outer");
  for (const auto& e : events) {
    EXPECT_EQ(e.job, 7);
    EXPECT_EQ(e.timeline, Timeline::kWall);
  }
  // Timestamps are non-decreasing within the thread.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
  reset_tracer();
}

TEST(SpanTracerTest, DisabledEmitsNothingExceptBalancingEnds) {
  reset_tracer();
  tracer().begin("never", 1);
  tracer().instant("never", 1);
  tracer().counter("never", 1.0, 1);
  EXPECT_TRUE(tracer().collect().empty());

  // A span opened while enabled still closes after tracing is flipped off:
  // the exported trace must stay balanced.
  tracer().set_enabled(true);
  tracer().begin("cut_off", 1);
  tracer().set_enabled(false);
  tracer().end("cut_off", 1);
  const auto events = tracer().collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[1].phase, Phase::kEnd);
  reset_tracer();
}

TEST(SpanTracerTest, ScopedSpanClosesAcrossDisable) {
  reset_tracer();
  tracer().set_enabled(true);
  {
    ScopedSpan span("flip", 2);
    tracer().set_enabled(false);
  }
  const auto events = tracer().collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].phase, Phase::kEnd);
  reset_tracer();
}

TEST(SpanTracerTest, JobScopeNestsAndRestores) {
  EXPECT_EQ(current_job(), kNoJob);
  {
    JobScope outer(11);
    EXPECT_EQ(current_job(), 11);
    EXPECT_EQ(log_job_context(), 11);
    {
      JobScope inner(12);
      EXPECT_EQ(current_job(), 12);
      EXPECT_EQ(log_job_context(), 12);
    }
    EXPECT_EQ(current_job(), 11);
  }
  EXPECT_EQ(current_job(), kNoJob);
  EXPECT_EQ(log_job_context(), kLogNoJob);
}

TEST(SpanTracerTest, SpansDefaultToTheAmbientJob) {
  reset_tracer();
  tracer().set_enabled(true);
  {
    JobScope scope(42);
    RIF_TRACE_SPAN("scoped");
  }
  tracer().set_enabled(false);
  const auto events = tracer().collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].job, 42);
  EXPECT_EQ(events[1].job, 42);
  reset_tracer();
}

TEST(SpanTracerTest, CollectMergesThreadsAndDisabledTracingIsCheap) {
  reset_tracer();
  tracer().set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kSpans; ++i) {
        ScopedSpan span("worker", t);
      }
    });
  }
  for (auto& w : workers) w.join();
  tracer().set_enabled(false);
  const auto events = tracer().collect();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads * kSpans * 2));
  reset_tracer();

  // Overhead guard for the tracing-OFF path: a disabled RIF_TRACE_SPAN is
  // one relaxed atomic load. The bound is deliberately loose (500ns/site
  // on average over a million sites) — it exists to catch an accidental
  // allocation or lock on the disabled path, not to benchmark.
  constexpr int kIters = 1000000;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      RIF_TRACE_SPAN("disabled_site");
    }
    best = std::min(
        best, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
  }
  EXPECT_LT(best / kIters, 500e-9);
  EXPECT_TRUE(tracer().collect().empty());
}

// --- Chrome-trace export and the in-repo checker -----------------------------

TEST(ChromeTraceTest, ExportedTraceValidatesAndCountsSpans) {
  reset_tracer();
  tracer().set_enabled(true);
  tracer().set_job_tenant(5, "alpha");
  {
    JobScope scope(5);
    RIF_TRACE_SPAN("phase");
    {
      RIF_TRACE_SPAN("stage");
      RIF_TRACE_INSTANT("mark");
      RIF_TRACE_COUNTER("depth", 2.0);
    }
    { RIF_TRACE_SPAN("stage"); }
  }
  // Virtual-timeline lifecycle lane for the same job.
  tracer().virtual_begin("queue_wait", 5, 1000, 5);
  tracer().virtual_end("queue_wait", 5, 2500, 5);
  tracer().set_enabled(false);

  const std::string path = temp_path("rif_obs_trace.json");
  ASSERT_TRUE(write_chrome_trace(path));
  const TraceCheckResult check = check_chrome_trace_file(path);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.span_counts.at("phase"), 1u);
  EXPECT_EQ(check.span_counts.at("stage"), 2u);
  EXPECT_EQ(check.span_counts.at("queue_wait"), 1u);
  EXPECT_GE(check.spans, 4u);
  // Two timelines: the wall track and the job's virtual track.
  EXPECT_GE(check.tracks, 2u);

  // The export carries tenant attribution for the registered job.
  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"tenant\": \"alpha\""), std::string::npos);
  fs::remove(path);
  reset_tracer();
}

TEST(TraceCheckTest, AcceptsMinimalValidTrace) {
  const std::string doc =
      "{\"traceEvents\": ["
      "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1, \"pid\": 1, \"tid\": 1},"
      "{\"name\": \"a\", \"ph\": \"E\", \"ts\": 2, \"pid\": 1, \"tid\": 1}"
      "]}";
  const TraceCheckResult check = check_chrome_trace(doc);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.spans, 1u);
}

TEST(TraceCheckTest, RejectsUnmatchedBegin) {
  const std::string doc =
      "{\"traceEvents\": ["
      "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1, \"pid\": 1, \"tid\": 1}"
      "]}";
  EXPECT_FALSE(check_chrome_trace(doc).ok);
}

TEST(TraceCheckTest, RejectsCrossedSpans) {
  // B(a) B(b) E(a) E(b) on one track violates strict nesting.
  const std::string doc =
      "{\"traceEvents\": ["
      "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1, \"pid\": 1, \"tid\": 1},"
      "{\"name\": \"b\", \"ph\": \"B\", \"ts\": 2, \"pid\": 1, \"tid\": 1},"
      "{\"name\": \"a\", \"ph\": \"E\", \"ts\": 3, \"pid\": 1, \"tid\": 1},"
      "{\"name\": \"b\", \"ph\": \"E\", \"ts\": 4, \"pid\": 1, \"tid\": 1}"
      "]}";
  EXPECT_FALSE(check_chrome_trace(doc).ok);
}

TEST(TraceCheckTest, SeparateTracksNestIndependently) {
  // The same interleaving is fine when the spans live on different tids.
  const std::string doc =
      "{\"traceEvents\": ["
      "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1, \"pid\": 1, \"tid\": 1},"
      "{\"name\": \"b\", \"ph\": \"B\", \"ts\": 2, \"pid\": 1, \"tid\": 2},"
      "{\"name\": \"a\", \"ph\": \"E\", \"ts\": 3, \"pid\": 1, \"tid\": 1},"
      "{\"name\": \"b\", \"ph\": \"E\", \"ts\": 4, \"pid\": 1, \"tid\": 2}"
      "]}";
  const TraceCheckResult check = check_chrome_trace(doc);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.tracks, 2u);
}

TEST(TraceCheckTest, RejectsMalformedJsonAndSchema) {
  EXPECT_FALSE(check_chrome_trace("{\"traceEvents\": [").ok);
  EXPECT_FALSE(check_chrome_trace("not json at all").ok);
  EXPECT_FALSE(check_chrome_trace("{}").ok);  // no traceEvents
  // ph must be a known phase letter.
  EXPECT_FALSE(check_chrome_trace(
                   "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"Q\", "
                   "\"ts\": 1, \"pid\": 1, \"tid\": 1}]}")
                   .ok);
  // Events must carry numeric ts.
  EXPECT_FALSE(check_chrome_trace(
                   "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"i\", "
                   "\"ts\": \"x\", \"pid\": 1, \"tid\": 1}]}")
                   .ok);
}

TEST(JsonParserTest, ParsesEscapesNumbersAndStructure) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(parse_json(
      "{\"s\": \"a\\\"b\\n\\u0041\", \"n\": -1.5e2, \"l\": [1, true, null]}",
      v, err))
      << err;
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.find("s")->string, "a\"b\nA");
  EXPECT_DOUBLE_EQ(v.find("n")->number, -150.0);
  ASSERT_EQ(v.find("l")->array.size(), 3u);
  EXPECT_TRUE(v.find("l")->array[1].boolean);
  EXPECT_EQ(v.find("l")->array[2].kind, JsonValue::Kind::kNull);

  // Trailing garbage and truncation are syntax errors, not silent success.
  EXPECT_FALSE(parse_json("{} extra", v, err));
  EXPECT_FALSE(parse_json("{\"a\": 1", v, err));
  EXPECT_FALSE(parse_json("", v, err));
}

// --- sim virtual-timeline export ---------------------------------------------

TEST(SimTraceExportTest, ComputeRecordsBecomeValidatedSlices) {
  sim::TraceRecorder rec;
  rec.set_enabled(true);
  rec.record({from_seconds(1.0), sim::TraceKind::kComputeStart, 3, -1, 0, ""});
  rec.record({from_seconds(2.0), sim::TraceKind::kComputeEnd, 3, -1, 0, ""});
  rec.record({from_seconds(2.5), sim::TraceKind::kMessageSent, 3, 4, 128, ""});
  const std::string path = temp_path("rif_sim_trace.json");
  ASSERT_TRUE(sim::export_trace_chrome(rec, path));
  const TraceCheckResult check = check_chrome_trace_file(path);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GE(check.events, 3u);
  fs::remove(path);
}

// --- MetricsScraper ----------------------------------------------------------

TEST(MetricsScraperTest, DeltasTrackIncrementsBetweenScrapes) {
  runtime::MetricsRegistry reg;
  MetricsScraper::Config cfg;
  cfg.period_seconds = 3600.0;  // periodic thread never fires in-test
  MetricsScraper scraper(reg, cfg);

  reg.counter("events").add(5);
  reg.gauge("level").set(2.0);
  reg.histogram("lat").observe(0.001);
  scraper.scrape_now();
  reg.counter("events").add(7);
  reg.gauge("level").set(1.5);
  reg.histogram("lat").observe(0.002);
  reg.histogram("lat").observe(0.004);
  scraper.scrape_now();

  const auto samples = scraper.samples();
  ASSERT_EQ(samples.size(), 2u);
  // First scrape: deltas equal raw values (previous = empty).
  EXPECT_EQ(samples[0].values.counters.at("events"), 5u);
  EXPECT_EQ(samples[0].counter_deltas.at("events"), 5u);
  // Second scrape: raw totals plus movement since the first.
  EXPECT_EQ(samples[1].values.counters.at("events"), 12u);
  EXPECT_EQ(samples[1].counter_deltas.at("events"), 7u);
  EXPECT_DOUBLE_EQ(samples[1].gauge_deltas.at("level"), -0.5);
  EXPECT_EQ(samples[1].histogram_count_deltas.at("lat"), 2u);
  EXPECT_GT(samples[1].histogram_sum_deltas.at("lat"), 0.0);
  EXPECT_GE(samples[1].t_seconds, samples[0].t_seconds);
}

TEST(MetricsScraperTest, DeltasSumToTotalsUnderConcurrentWriters) {
  runtime::MetricsRegistry reg;
  MetricsScraper::Config cfg;
  cfg.period_seconds = 0.0005;
  MetricsScraper scraper(reg, cfg);
  scraper.start();

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        reg.counter("work").add(1);
        if (i % 64 == 0) reg.histogram("lat").observe(1e-5);
      }
    });
  }
  for (auto& w : writers) w.join();
  scraper.stop();

  const auto samples = scraper.samples();
  ASSERT_GE(samples.size(), 2u);  // immediate start scrape + final stop scrape
  // Deltas are computed against the immediately preceding scrape, so they
  // telescope: the sum of increments is exactly the final total, no matter
  // how the scrapes raced the writers.
  std::uint64_t delta_sum = 0;
  for (const auto& s : samples) {
    const auto it = s.counter_deltas.find("work");
    if (it != s.counter_deltas.end()) delta_sum += it->second;
  }
  EXPECT_EQ(delta_sum, kThreads * kPerThread);
  EXPECT_EQ(samples.back().values.counters.at("work"), kThreads * kPerThread);
}

TEST(MetricsScraperTest, TimelineJsonParsesWithSamplesAndDeltas) {
  runtime::MetricsRegistry reg;
  MetricsScraper::Config cfg;
  cfg.period_seconds = 3600.0;
  MetricsScraper scraper(reg, cfg);
  scraper.set_derive([](runtime::MetricsRegistry& r) {
    r.gauge("derived").set(r.gauge_value("base") * 2.0);
  });
  for (int i = 0; i < 3; ++i) {
    reg.gauge("base").set(i + 1.0);
    reg.counter("ticks").add(1);
    scraper.scrape_now();
  }

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(parse_json(scraper.timeline_json(), doc, err)) << err;
  const JsonValue* samples = doc.find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->array.size(), 3u);
  // The derive hook ran on every scrape: derived = 2 * base, per sample.
  for (std::size_t i = 0; i < 3; ++i) {
    const JsonValue* gauges = samples->array[i].find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_DOUBLE_EQ(gauges->find("derived")->find("v")->number,
                     2.0 * (static_cast<double>(i) + 1.0));
    const JsonValue* counters = samples->array[i].find("counters");
    EXPECT_DOUBLE_EQ(counters->find("ticks")->find("d")->number, 1.0);
  }

  const std::string path = temp_path("rif_obs_timeline.json");
  ASSERT_TRUE(scraper.write_timeline(path));
  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(text, scraper.timeline_json());
  fs::remove(path);
}

TEST(MetricsScraperTest, RingEvictsOldestButKeepsDeltasValid) {
  runtime::MetricsRegistry reg;
  MetricsScraper::Config cfg;
  cfg.period_seconds = 3600.0;
  cfg.max_samples = 4;
  MetricsScraper scraper(reg, cfg);
  for (int i = 0; i < 10; ++i) {
    reg.counter("n").add(1);
    scraper.scrape_now();
  }
  const auto samples = scraper.samples();
  ASSERT_EQ(samples.size(), 4u);
  // The survivors are the most recent scrapes, each with the delta it was
  // born with (1 per scrape) — eviction never rewrites history.
  EXPECT_EQ(samples.back().values.counters.at("n"), 10u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.counter_deltas.at("n"), 1u);
  }
}

// --- leveled logging ---------------------------------------------------------

TEST(LogTest, ParsesLevelsCaseInsensitively) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_TRUE(parse_log_level("trace", &level));
  EXPECT_EQ(level, LogLevel::kTrace);
  EXPECT_TRUE(parse_log_level("DEBUG", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("Info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(parse_log_level("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(parse_log_level("shout", &level));
}

TEST(LogTest, JobContextIsPerThreadAndRestored) {
  log_set_job_context(9);
  EXPECT_EQ(log_job_context(), 9);
  std::thread other([] { EXPECT_EQ(log_job_context(), kLogNoJob); });
  other.join();
  log_set_job_context(kLogNoJob);
  EXPECT_EQ(log_job_context(), kLogNoJob);
}

}  // namespace
}  // namespace rif::obs
