#include <gtest/gtest.h>

#include "core/parallel/parallel_pct.h"
#include "core/postprocess.h"
#include "hsi/metrics.h"
#include "hsi/scene.h"

namespace rif::core {
namespace {

TEST(LuminanceTest, WeightsSumToOne) {
  hsi::RgbImage img(2, 1);
  for (int c = 0; c < 3; ++c) img.at(0, 0, c) = 100;
  img.at(1, 0, 0) = 255;
  const auto lum = luminance(img);
  EXPECT_NEAR(lum[0], 100.0f, 0.5f);  // grey maps to itself
  EXPECT_NEAR(lum[1], 0.299 * 255, 0.5);
}

TEST(SobelTest, FlatImageHasNoEdges) {
  std::vector<float> plane(10 * 10, 3.0f);
  const auto mag = sobel_magnitude(plane, 10, 10);
  for (const float v : mag) EXPECT_EQ(v, 0.0f);
}

TEST(SobelTest, VerticalStepDetected) {
  const int w = 10, h = 10;
  std::vector<float> plane(w * h, 0.0f);
  for (int y = 0; y < h; ++y) {
    for (int x = 5; x < w; ++x) plane[y * w + x] = 1.0f;
  }
  const auto mag = sobel_magnitude(plane, w, h);
  // Strongest response along the step columns (x in {4,5}).
  EXPECT_GT(mag[5 * w + 5], 1.0f);
  EXPECT_EQ(mag[5 * w + 1], 0.0f);  // far from the edge
  // Border is zeroed by convention.
  EXPECT_EQ(mag[0], 0.0f);
}

TEST(SobelTest, RotationSymmetry) {
  const int n = 12;
  std::vector<float> horizontal(n * n, 0.0f), vertical(n * n, 0.0f);
  for (int y = 6; y < n; ++y) {
    for (int x = 0; x < n; ++x) horizontal[y * n + x] = 2.0f;
  }
  for (int y = 0; y < n; ++y) {
    for (int x = 6; x < n; ++x) vertical[y * n + x] = 2.0f;
  }
  const auto mh = sobel_magnitude(horizontal, n, n);
  const auto mv = sobel_magnitude(vertical, n, n);
  EXPECT_FLOAT_EQ(mh[6 * n + 6], mv[6 * n + 6]);
}

TEST(RxAnomalyTest, OutlierScoresHighest) {
  const int w = 20, h = 20;
  std::vector<std::vector<float>> channels(2,
                                           std::vector<float>(w * h, 1.0f));
  // Background with mild structure, one strong outlier pixel.
  for (int i = 0; i < w * h; ++i) {
    channels[0][i] = 1.0f + 0.01f * static_cast<float>(i % 7);
    channels[1][i] = 2.0f - 0.01f * static_cast<float>(i % 5);
  }
  const int outlier = 7 * w + 7;
  channels[0][outlier] = 5.0f;
  channels[1][outlier] = -3.0f;
  const auto scores = rx_anomaly(channels, w, h);
  int argmax = 0;
  for (int i = 0; i < w * h; ++i) {
    if (scores[i] > scores[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, outlier);
}

TEST(RxAnomalyTest, ScoresNonNegative) {
  const auto scene = hsi::generate_scene({.width = 16, .height = 16,
                                          .bands = 8, .seed = 3});
  std::vector<std::vector<float>> channels;
  for (int b = 0; b < 3; ++b) {
    channels.push_back(hsi::extract_band(scene.cube, b));
  }
  for (const float v : rx_anomaly(channels, 16, 16)) EXPECT_GE(v, 0.0f);
}

TEST(MaskTest, TopFractionSelectsApproximately) {
  std::vector<float> plane(1000);
  for (int i = 0; i < 1000; ++i) plane[i] = static_cast<float>(i);
  const auto mask = top_fraction_mask(plane, 0.10);
  int count = 0;
  for (const auto m : mask) count += m;
  EXPECT_NEAR(count, 100, 2);
  EXPECT_EQ(mask[999], 1);  // highest value selected
  EXPECT_EQ(mask[0], 0);    // lowest not
}

TEST(BlobTest, FindsSeparateComponents) {
  const int w = 16, h = 8;
  std::vector<std::uint8_t> mask(w * h, 0);
  // Two 2x2 squares far apart.
  for (int y = 1; y <= 2; ++y) {
    for (int x = 1; x <= 2; ++x) mask[y * w + x] = 1;
  }
  for (int y = 5; y <= 6; ++y) {
    for (int x = 12; x <= 13; ++x) mask[y * w + x] = 1;
  }
  const auto blobs = find_blobs(mask, w, h, 1);
  ASSERT_EQ(blobs.size(), 2u);
  EXPECT_EQ(blobs[0].pixels, 4);
  EXPECT_NEAR(blobs[0].centroid_x, 1.5, 1e-9);
  EXPECT_NEAR(blobs[1].centroid_x, 12.5, 1e-9);
}

TEST(BlobTest, DiagonalPixelsConnect) {
  const int w = 6, h = 6;
  std::vector<std::uint8_t> mask(w * h, 0);
  mask[0 * w + 0] = 1;
  mask[1 * w + 1] = 1;
  mask[2 * w + 2] = 1;
  const auto blobs = find_blobs(mask, w, h, 1);
  ASSERT_EQ(blobs.size(), 1u);  // 8-connectivity
  EXPECT_EQ(blobs[0].pixels, 3);
}

TEST(BlobTest, MinSizeFilters) {
  const int w = 8, h = 8;
  std::vector<std::uint8_t> mask(w * h, 0);
  mask[0] = 1;  // singleton
  for (int x = 3; x < 8; ++x) mask[4 * w + x] = 1;  // a 5-pixel run
  const auto blobs = find_blobs(mask, w, h, 3);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].pixels, 5);
}

TEST(DetectionTest, PerfectDetectionScoresFullRecall) {
  const int w = 32, h = 32;
  std::vector<std::uint8_t> labels(
      w * h, static_cast<std::uint8_t>(hsi::Material::kForest));
  for (int y = 10; y < 13; ++y) {
    for (int x = 10; x < 14; ++x) {
      labels[y * w + x] = static_cast<std::uint8_t>(hsi::Material::kVehicle);
    }
  }
  Blob hit;
  hit.min_x = 10;
  hit.max_x = 13;
  hit.min_y = 10;
  hit.max_y = 12;
  hit.pixels = 12;
  hit.centroid_x = 11.5;
  hit.centroid_y = 11.0;
  const auto score = score_detections({hit}, labels, w, h,
                                      {hsi::Material::kVehicle});
  EXPECT_EQ(score.targets_present, 1);
  EXPECT_EQ(score.targets_detected, 1);
  EXPECT_EQ(score.false_alarms, 0);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
}

TEST(DetectionTest, BlobOffTargetIsFalseAlarm) {
  const int w = 32, h = 32;
  std::vector<std::uint8_t> labels(
      w * h, static_cast<std::uint8_t>(hsi::Material::kForest));
  Blob miss;
  miss.centroid_x = 25;
  miss.centroid_y = 25;
  miss.pixels = 5;
  const auto score =
      score_detections({miss}, labels, w, h, {hsi::Material::kVehicle});
  EXPECT_EQ(score.targets_present, 0);
  EXPECT_EQ(score.false_alarms, 1);
}

TEST(PipelineDetectionTest, RxOnComponentsFindsVehicles) {
  // End-to-end: fuse a scene, RX-score the component planes, threshold,
  // blob, and check the vehicles are among the detections.
  hsi::SceneConfig config;
  config.width = 96;
  config.height = 96;
  config.bands = 32;
  config.seed = 31;
  const hsi::Scene scene = hsi::generate_scene(config);

  ParallelPctConfig pcfg;
  pcfg.threads = 4;
  const PctResult fused = fuse_parallel(scene.cube, pcfg);

  const auto scores = rx_anomaly(fused.component_planes, config.width,
                                 config.height);
  const auto mask = top_fraction_mask(scores, 0.02);
  const auto blobs = find_blobs(mask, config.width, config.height, 4);
  const auto score = score_detections(
      blobs, scene.labels, config.width, config.height,
      {hsi::Material::kVehicle, hsi::Material::kCamouflage});
  EXPECT_GT(score.targets_present, 0);
  EXPECT_GE(score.recall(), 0.5);
}

}  // namespace
}  // namespace rif::core
