// SIMD kernel layer equivalence tests.
//
// The dispatched kernels (`kernels::*`) must agree with the scalar
// references (`kernels::scalar::*`) within floating-point reassociation
// tolerance across awkward shapes: odd band counts, sub-block tails
// (1..9 members, 1..5 pixel rows), member ranges that straddle the 8-lane
// pack blocks. In a RIF_DISABLE_SIMD build the dispatched entry points ARE
// the scalar references, and these tests pin that down bit-exactly — so
// running this suite on both CI legs is the cross-build half of the
// tolerance contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/spectral_angle.h"
#include "linalg/kernels.h"
#include "linalg/kernels_table.h"
#include "linalg/matrix.h"
#include "linalg/stats.h"
#include "support/rng.h"

namespace rif::linalg::kernels {
namespace {

std::vector<float> random_floats(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<double> random_doubles(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Reassociation tolerance: |simd - scalar| <= tol * (n + 1) ulp-ish slack.
double tol(int n) { return 1e-12 * (n + 1); }

TEST(KernelsTest, BackendIsConsistentWithSimdFlag) {
  if (simd_enabled()) {
    EXPECT_STRNE(backend(), "scalar");
  } else {
    EXPECT_STREQ(backend(), "scalar");
  }
}

TEST(KernelsTest, DotMatchesScalarAcrossLengths) {
  for (int n = 1; n <= 40; ++n) {
    const auto x = random_floats(n, 100 + n);
    const auto y = random_floats(n, 200 + n);
    const double expect = scalar::dot(x.data(), y.data(), n);
    EXPECT_NEAR(dot(x.data(), y.data(), n), expect, tol(n)) << "n=" << n;
  }
  for (const int n : {64, 105, 128, 210}) {
    const auto x = random_floats(n, 300 + n);
    const auto y = random_floats(n, 400 + n);
    EXPECT_NEAR(dot(x.data(), y.data(), n),
                scalar::dot(x.data(), y.data(), n), tol(n));
  }
}

TEST(KernelsTest, DotDfMatchesScalarAcrossLengths) {
  for (const int n : {1, 2, 3, 5, 7, 9, 16, 31, 33, 105}) {
    const auto x = random_doubles(n, 500 + n);
    const auto y = random_floats(n, 600 + n);
    EXPECT_NEAR(dot_df(x.data(), y.data(), n),
                scalar::dot_df(x.data(), y.data(), n), tol(n))
        << "n=" << n;
  }
}

TEST(KernelsTest, DotNormMatchesScalar) {
  for (const int n : {1, 3, 7, 8, 15, 32, 105, 211}) {
    const auto x = random_floats(n, 700 + n);
    const auto y = random_floats(n, 800 + n);
    double d_s, nx_s, ny_s, d_v, nx_v, ny_v;
    scalar::dot_norm(x.data(), y.data(), n, &d_s, &nx_s, &ny_s);
    dot_norm(x.data(), y.data(), n, &d_v, &nx_v, &ny_v);
    EXPECT_NEAR(d_v, d_s, tol(n)) << "n=" << n;
    EXPECT_NEAR(nx_v, nx_s, tol(n)) << "n=" << n;
    EXPECT_NEAR(ny_v, ny_s, tol(n)) << "n=" << n;
  }
}

TEST(KernelsTest, Dot8MatchesPerMemberDotsAtOddBandCounts) {
  for (const int bands : {1, 2, 3, 5, 7, 8, 9, 31, 33, 105}) {
    // Pack 8 members band-major, keep the AoS copies for the reference.
    std::vector<std::vector<float>> members;
    std::vector<float> pack(static_cast<std::size_t>(bands) * kScreenLanes);
    for (int m = 0; m < kScreenLanes; ++m) {
      members.push_back(random_floats(bands, 900 + bands * 10 + m));
      for (int b = 0; b < bands; ++b) {
        pack[static_cast<std::size_t>(b) * kScreenLanes + m] = members[m][b];
      }
    }
    const auto pixel = random_floats(bands, 999 + bands);
    double out[kScreenLanes];
    dot8(pack.data(), pixel.data(), bands, out);
    for (int m = 0; m < kScreenLanes; ++m) {
      EXPECT_NEAR(out[m],
                  scalar::dot(members[m].data(), pixel.data(), bands),
                  tol(bands))
          << "bands=" << bands << " lane=" << m;
    }
  }
}

TEST(KernelsTest, Dot8ZeroLanesOfPartialBlockStayZero) {
  // The UniqueSet pack zero-fills unused lanes; their dots must be exactly
  // zero so a partially filled block is safe to run through the kernel.
  const int bands = 13;
  std::vector<float> pack(static_cast<std::size_t>(bands) * kScreenLanes,
                          0.0f);
  const auto member = random_floats(bands, 77);
  for (int b = 0; b < bands; ++b) {
    pack[static_cast<std::size_t>(b) * kScreenLanes] = member[b];  // lane 0
  }
  const auto pixel = random_floats(bands, 78);
  double out[kScreenLanes];
  dot8(pack.data(), pixel.data(), bands, out);
  EXPECT_NEAR(out[0], scalar::dot(member.data(), pixel.data(), bands),
              tol(bands));
  for (int m = 1; m < kScreenLanes; ++m) EXPECT_EQ(out[m], 0.0);
}

TEST(KernelsTest, Rank1UpdateMatchesScalarBothSigns) {
  for (const int dims : {1, 2, 3, 5, 8, 9, 33}) {
    const auto c = random_doubles(dims, 1100 + dims);
    const std::size_t tri = static_cast<std::size_t>(dims) * (dims + 1) / 2;
    std::vector<double> a(tri, 0.5);
    std::vector<double> b(tri, 0.5);
    scalar::rank1_update(a.data(), c.data(), dims, 1.0);
    rank1_update(b.data(), c.data(), dims, 1.0);
    scalar::rank1_update(a.data(), c.data(), dims, -0.5);
    rank1_update(b.data(), c.data(), dims, -0.5);
    for (std::size_t i = 0; i < tri; ++i) {
      EXPECT_NEAR(b[i], a[i], 1e-12) << "dims=" << dims << " idx=" << i;
    }
  }
}

TEST(KernelsTest, RankKMatchesScalarAcrossRowTails) {
  // 1..5 pixel rows (sub-block tails) at odd dims, vs the scalar triangle.
  for (const int dims : {1, 3, 7, 9, 33}) {
    for (int rows = 1; rows <= 5; ++rows) {
      const auto cols =
          random_doubles(dims * rows, 1200 + dims * 10 + rows);
      const std::size_t tri =
          static_cast<std::size_t>(dims) * (dims + 1) / 2;
      std::vector<double> a(tri, 0.25);
      std::vector<double> b(tri, 0.25);
      scalar::rank_k_update(a.data(), cols.data(), dims, rows);
      rank_k_update(b.data(), cols.data(), dims, rows);
      for (std::size_t i = 0; i < tri; ++i) {
        EXPECT_NEAR(b[i], a[i], tol(rows))
            << "dims=" << dims << " rows=" << rows << " idx=" << i;
      }
    }
  }
}

TEST(KernelsTest, ProjectMatchesScalarAcrossShapes) {
  for (const int comps : {1, 2, 3, 4, 5}) {
    for (const int bands : {1, 3, 7, 31, 33, 105}) {
      const auto t = random_doubles(comps * bands, 1300 + comps * 7 + bands);
      const auto bias = random_doubles(comps, 1400 + comps);
      const auto pixel = random_floats(bands, 1500 + bands);
      std::vector<float> a(static_cast<std::size_t>(comps));
      std::vector<float> b(static_cast<std::size_t>(comps));
      scalar::project(t.data(), comps, bands, bias.data(), pixel.data(),
                      a.data());
      project(t.data(), comps, bands, bias.data(), pixel.data(), b.data());
      for (int c = 0; c < comps; ++c) {
        EXPECT_NEAR(b[c], a[c], 1e-5f)
            << "comps=" << comps << " bands=" << bands << " c=" << c;
      }
    }
  }
}

TEST(KernelsTest, DispatchedIsBitExactScalarWhenSimdDisabled) {
  if (simd_enabled()) GTEST_SKIP() << "SIMD build: covered by NEAR tests";
  const int n = 37;
  const auto x = random_floats(n, 1600);
  const auto y = random_floats(n, 1601);
  EXPECT_EQ(dot(x.data(), y.data(), n), scalar::dot(x.data(), y.data(), n));
}

// --- runtime dispatch --------------------------------------------------------

/// Restore the startup tier selection when a test returns, however it
/// exits — dispatch state is process-global.
struct BackendGuard {
  ~BackendGuard() { reset_backend(); }
};

TEST(RuntimeDispatchTest, EveryAvailableTierSwitchesAndAgreesWithScalar) {
  const BackendGuard guard;
  const auto tiers = available_backends();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.back(), "scalar");  // the floor is always present

  const int n = 105;
  const auto x = random_floats(n, 2000);
  const auto y = random_floats(n, 2001);
  const double expect = scalar::dot(x.data(), y.data(), n);
  for (const std::string& tier : tiers) {
    ASSERT_TRUE(set_backend(tier.c_str())) << tier;
    EXPECT_STREQ(backend(), tier.c_str());
    EXPECT_EQ(simd_enabled(), tier != "scalar");
    EXPECT_NEAR(dot(x.data(), y.data(), n), expect, tol(n)) << tier;
  }
}

TEST(RuntimeDispatchTest, ForcedScalarTierIsBitExactReference) {
  const BackendGuard guard;
  ASSERT_TRUE(set_backend("scalar"));
  EXPECT_STREQ(backend(), "scalar");
  EXPECT_FALSE(simd_enabled());
  const int n = 41;
  const auto x = random_floats(n, 2100);
  const auto y = random_floats(n, 2101);
  EXPECT_EQ(dot(x.data(), y.data(), n), scalar::dot(x.data(), y.data(), n));
  const auto t = random_doubles(3 * n, 2102);
  const auto bias = random_doubles(3, 2103);
  std::vector<float> a(3), b(3);
  scalar::project(t.data(), 3, n, bias.data(), x.data(), a.data());
  project(t.data(), 3, n, bias.data(), x.data(), b.data());
  for (int c = 0; c < 3; ++c) EXPECT_EQ(b[c], a[c]);
}

TEST(RuntimeDispatchTest, UnknownOrUnsupportedTierIsRefusedUnchanged) {
  const BackendGuard guard;
  const std::string before = backend();
  EXPECT_FALSE(set_backend("avx512"));
  EXPECT_FALSE(set_backend(""));
  EXPECT_FALSE(set_backend(nullptr));
  EXPECT_EQ(backend(), before);
}

TEST(RuntimeDispatchTest, EnvOverrideForcesAndFallsBackWhenBogus) {
  const BackendGuard guard;
  ASSERT_EQ(setenv("RIF_SIMD", "scalar", 1), 0);
  EXPECT_STREQ(reset_backend(), "scalar");
  EXPECT_STREQ(backend(), "scalar");

  // A tier this binary/CPU cannot run falls back to detection (with a
  // logged warning), never to a crash or a silently wrong table.
  ASSERT_EQ(setenv("RIF_SIMD", "no-such-isa", 1), 0);
  const std::string detected = reset_backend();
  const auto tiers = available_backends();
  EXPECT_NE(std::find(tiers.begin(), tiers.end(), detected), tiers.end());

  ASSERT_EQ(unsetenv("RIF_SIMD"), 0);
}

TEST(RuntimeDispatchTest, RuntimeTierIsBitIdenticalToCompileTimeTier) {
  // The acceptance contract of runtime dispatch: when the build's
  // compile-time path selected tier X (e.g. -march=native on an AVX2
  // host), the runtime-dispatched tier X — the one portable builds run —
  // computes the very same bytes. With pinned per-TU flags both tables
  // point at functionally identical code; this pins it bit-exactly.
  const BackendGuard guard;
  const KernelTable& compiled = compiled_table();
  if (!set_backend(compiled.name)) {
    GTEST_SKIP() << "compile-time tier " << compiled.name
                 << " has no runtime table here";
  }
  const int n = 105;
  const auto x = random_floats(n, 2200);
  const auto y = random_floats(n, 2201);
  EXPECT_EQ(dot(x.data(), y.data(), n), compiled.dot(x.data(), y.data(), n));
  const auto xd = random_doubles(n, 2202);
  EXPECT_EQ(dot_df(xd.data(), y.data(), n),
            compiled.dot_df(xd.data(), y.data(), n));

  std::vector<float> pack(static_cast<std::size_t>(n) * kScreenLanes);
  for (std::size_t i = 0; i < pack.size(); ++i) {
    pack[i] = static_cast<float>(std::sin(0.1 * static_cast<double>(i)));
  }
  double got[kScreenLanes], want[kScreenLanes];
  dot8(pack.data(), x.data(), n, got);
  compiled.dot8(pack.data(), x.data(), n, want);
  for (int m = 0; m < kScreenLanes; ++m) EXPECT_EQ(got[m], want[m]);

  const auto t = random_doubles(3 * n, 2203);
  const auto bias = random_doubles(3, 2204);
  std::vector<float> a(3), b(3);
  project(t.data(), 3, n, bias.data(), x.data(), a.data());
  compiled.project(t.data(), 3, n, bias.data(), x.data(), b.data());
  for (int c = 0; c < 3; ++c) EXPECT_EQ(a[c], b[c]);
}

// --- UniqueSet pack integration ----------------------------------------------

core::UniqueSet build_set(int bands, int members, double threshold,
                          std::uint64_t seed) {
  core::UniqueSet set(bands, threshold);
  Rng rng(seed);
  int added = 0;
  while (added < members) {
    std::vector<float> px(static_cast<std::size_t>(bands));
    for (auto& v : px) v = static_cast<float>(rng.uniform(0.05, 1.0));
    if (set.screen(px)) ++added;
  }
  return set;
}

TEST(UniqueSetPackTest, AnyWithinFindsExactlyTheInRangeMember) {
  // A scaled copy of member j has spectral angle 0 to member j — within
  // any threshold — and (by unique-set construction) exceeds the threshold
  // to every other member. So any_within over [begin, end) must be true
  // iff j is in range, for every (begin, end) straddling pack blocks and
  // for set sizes covering sub-block tails (1..9 members).
  const int bands = 21;
  const double threshold = 0.05;
  for (int members = 1; members <= 9; ++members) {
    const core::UniqueSet set = build_set(bands, members, threshold, 42);
    ASSERT_EQ(set.size(), static_cast<std::size_t>(members));
    for (int j = 0; j < members; ++j) {
      std::vector<float> probe(set.member(j).begin(), set.member(j).end());
      for (auto& v : probe) v *= 2.0f;  // same direction, double the norm
      const double inv =
          1.0 / std::sqrt(scalar::dot(probe.data(), probe.data(), bands));
      for (int begin = 0; begin <= members; ++begin) {
        for (int end = begin; end <= members; ++end) {
          const bool expect = begin <= j && j < end;
          EXPECT_EQ(set.any_within(probe, inv, begin, end), expect)
              << "members=" << members << " j=" << j << " range=[" << begin
              << "," << end << ")";
        }
      }
    }
  }
}

TEST(UniqueSetPackTest, RangesAcrossBlockBoundariesOnLargerSet) {
  const int bands = 33;  // odd: exercises the kernel tail
  const int members = 21;  // 2 full blocks + 5-lane tail
  const double threshold = 0.04;
  const core::UniqueSet set = build_set(bands, members, threshold, 7);
  ASSERT_EQ(set.size(), static_cast<std::size_t>(members));
  for (const int j : {0, 7, 8, 15, 16, 20}) {
    std::vector<float> probe(set.member(j).begin(), set.member(j).end());
    for (auto& v : probe) v *= 0.5f;
    const double inv =
        1.0 / std::sqrt(scalar::dot(probe.data(), probe.data(), bands));
    for (const int begin : {0, 1, 7, 8, 9, 15, 16}) {
      for (const int end : {begin, 7, 8, 9, 16, 20, 21}) {
        if (end < begin) continue;
        EXPECT_EQ(set.any_within(probe, inv, begin, end),
                  begin <= j && j < end)
            << "j=" << j << " range=[" << begin << "," << end << ")";
      }
    }
  }
}

TEST(UniqueSetPackTest, FromFlatRebuildsIdenticalPack) {
  const int bands = 19;
  const double threshold = 0.05;
  const core::UniqueSet set = build_set(bands, 11, threshold, 99);
  const core::UniqueSet rebuilt =
      core::UniqueSet::from_flat(bands, threshold, set.flat());
  ASSERT_EQ(rebuilt.size(), set.size());
  // Same members, same pack: identical screening decisions and identical
  // comparison counts for any probe.
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> probe(static_cast<std::size_t>(bands));
    for (auto& v : probe) v = static_cast<float>(rng.uniform(0.05, 1.0));
    const double inv =
        1.0 / std::sqrt(scalar::dot(probe.data(), probe.data(), bands));
    std::uint64_t comp_a = 0, comp_b = 0;
    const bool a = set.any_within(probe, inv, 0, set.size(), &comp_a);
    const bool b =
        rebuilt.any_within(probe, inv, 0, rebuilt.size(), &comp_b);
    EXPECT_EQ(a, b) << "trial " << trial;
    EXPECT_EQ(comp_a, comp_b) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rif::linalg::kernels
