#include <gtest/gtest.h>

#include "core/distributed/fusion_job.h"
#include "core/parallel/parallel_pct.h"
#include "core/pct.h"
#include "hsi/scene.h"

namespace rif::core {
namespace {

hsi::Scene test_scene(int size = 32, int bands = 16, std::uint64_t seed = 77) {
  hsi::SceneConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.bands = bands;
  cfg.seed = seed;
  return hsi::generate_scene(cfg);
}

/// Full-mode config over a small real scene with slow nodes so that the
/// job spans virtual seconds (room for mid-run failure injection).
FusionJobConfig full_config(const hsi::Scene& scene, int workers, int tiles) {
  FusionJobConfig config;
  config.mode = ExecutionMode::kFull;
  config.cube = &scene.cube;
  config.shape = {scene.cube.width(), scene.cube.height(),
                  scene.cube.bands()};
  config.workers = workers;
  config.tiles_per_worker = tiles;
  // Slow CPUs stretch the job to ~3 virtual seconds so that the failure
  // scripts below land mid-computation.
  config.node.flops_per_second = 2e5;
  config.runtime.heartbeat_period = from_millis(20);
  config.runtime.failure_timeout = from_millis(80);
  config.runtime.retransmit_timeout = from_millis(60);
  config.runtime.state_request_timeout = from_millis(150);
  config.deadline = from_seconds(3000);
  return config;
}

FusionJobConfig cost_only_config(int workers, int tiles_per_worker) {
  FusionJobConfig config;
  config.mode = ExecutionMode::kCostOnly;
  config.shape = {320, 320, 105};
  config.workers = workers;
  config.tiles_per_worker = tiles_per_worker;
  config.deadline = from_seconds(100000);
  return config;
}

// --- CostOnly workload model --------------------------------------------------

TEST(CostOnlyTest, JobCompletes) {
  const FusionReport r = run_fusion_job(cost_only_config(4, 2));
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_EQ(r.outcome.tiles_distributed, 8);
  EXPECT_EQ(r.outcome.tiles_colored, 8);
  EXPECT_GT(r.outcome.unique_set_size, 0u);
  EXPECT_GT(r.total_flops_charged, 0.0);
}

TEST(CostOnlyTest, DeterministicElapsed) {
  const FusionReport a = run_fusion_job(cost_only_config(8, 2));
  const FusionReport b = run_fusion_job(cost_only_config(8, 2));
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(CostOnlyTest, MoreWorkersFaster) {
  const FusionReport one = run_fusion_job(cost_only_config(1, 2));
  const FusionReport four = run_fusion_job(cost_only_config(4, 2));
  const FusionReport sixteen = run_fusion_job(cost_only_config(16, 2));
  ASSERT_TRUE(one.completed && four.completed && sixteen.completed);
  EXPECT_LT(four.elapsed_seconds, one.elapsed_seconds / 2.0);
  EXPECT_LT(sixteen.elapsed_seconds, four.elapsed_seconds);
}

TEST(CostOnlyTest, SpeedupWithin20PercentOfLinearAt16) {
  // The paper's headline Figure 4 claim for the non-resilient algorithm.
  const FusionReport one = run_fusion_job(cost_only_config(1, 2));
  const FusionReport sixteen = run_fusion_job(cost_only_config(16, 2));
  const double speedup = one.elapsed_seconds / sixteen.elapsed_seconds;
  EXPECT_GT(speedup, 16.0 * 0.8);
  EXPECT_LE(speedup, 16.5);
}

TEST(CostOnlyTest, ResiliencyCostsAboutReplicationPlusProtocol) {
  FusionJobConfig plain = cost_only_config(8, 2);
  FusionJobConfig resilient = cost_only_config(8, 2);
  resilient.resilient = true;
  resilient.replication = 2;
  const FusionReport p = run_fusion_job(plain);
  const FusionReport r = run_fusion_job(resilient);
  ASSERT_TRUE(p.completed && r.completed);
  const double ratio = r.elapsed_seconds / p.elapsed_seconds;
  EXPECT_GT(ratio, 1.5);  // replication is not free
  EXPECT_LT(ratio, 3.0);  // but bounded near 2x + protocol overhead
  EXPECT_GT(r.protocol.acks, 0u);
  EXPECT_GT(r.protocol.heartbeats, 0u);
}

TEST(CostOnlyTest, SmpNetworkFasterThanLan) {
  FusionJobConfig lan = cost_only_config(8, 2);
  FusionJobConfig smp = cost_only_config(8, 2);
  smp.network = NetworkKind::kSmp;
  const FusionReport l = run_fusion_job(lan);
  const FusionReport s = run_fusion_job(smp);
  ASSERT_TRUE(l.completed && s.completed);
  EXPECT_LT(s.elapsed_seconds, l.elapsed_seconds);
}

// --- Full mode correctness ------------------------------------------------------

TEST(DistributedFullTest, MatchesSharedMemoryBitExact) {
  const auto scene = test_scene();
  const int workers = 3;
  const int tiles = 2;  // total 6 tiles
  const FusionReport r =
      run_fusion_job(full_config(scene, workers, tiles));
  ASSERT_TRUE(r.completed);

  ParallelPctConfig pcfg;
  pcfg.threads = workers;  // same covariance shard count
  pcfg.tiles = workers * tiles;
  const PctResult reference = fuse_parallel(scene.cube, pcfg);

  EXPECT_EQ(r.outcome.composite.data, reference.composite.data);
  EXPECT_EQ(r.outcome.unique_set_size, reference.unique_set_size);
  ASSERT_EQ(r.outcome.eigenvalues.size(), reference.eigenvalues.size());
  for (std::size_t i = 0; i < reference.eigenvalues.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.outcome.eigenvalues[i], reference.eigenvalues[i]);
  }
}

TEST(DistributedFullTest, SingleWorkerSingleTileMatchesSequential) {
  const auto scene = test_scene();
  const FusionReport r = run_fusion_job(full_config(scene, 1, 1));
  ASSERT_TRUE(r.completed);
  const PctResult seq = fuse(scene.cube);
  EXPECT_EQ(r.outcome.composite.data, seq.composite.data);
  EXPECT_EQ(r.outcome.unique_set_size, seq.unique_set_size);
}

TEST(DistributedFullTest, WorkerCountDoesNotChangeResult) {
  const auto scene = test_scene();
  // Same total tile count; different worker counts must agree bit-exactly
  // except for the covariance shard split — so fix shards by using the same
  // worker count in the reference... instead compare P=2 against P=2 with
  // a different network to show timing-independence.
  FusionJobConfig a = full_config(scene, 2, 3);
  FusionJobConfig b = full_config(scene, 2, 3);
  b.lan.bandwidth_bytes_per_sec = a.lan.bandwidth_bytes_per_sec / 10.0;
  b.node.flops_per_second = a.node.flops_per_second * 3.0;
  const FusionReport ra = run_fusion_job(a);
  const FusionReport rb = run_fusion_job(b);
  ASSERT_TRUE(ra.completed && rb.completed);
  EXPECT_EQ(ra.outcome.composite.data, rb.outcome.composite.data);
  EXPECT_NE(ra.elapsed_seconds, rb.elapsed_seconds);
}

TEST(DistributedFullTest, ReplicatedRunMatchesPlainRun) {
  const auto scene = test_scene();
  FusionJobConfig plain = full_config(scene, 2, 2);
  FusionJobConfig replicated = full_config(scene, 2, 2);
  replicated.resilient = true;
  replicated.replication = 2;
  const FusionReport p = run_fusion_job(plain);
  const FusionReport r = run_fusion_job(replicated);
  ASSERT_TRUE(p.completed && r.completed);
  EXPECT_EQ(p.outcome.composite.data, r.outcome.composite.data);
  EXPECT_GT(r.elapsed_seconds, p.elapsed_seconds);
}

// --- Resiliency under attack -----------------------------------------------------

TEST(DistributedResilienceTest, SurvivesWorkerNodeCrash) {
  const auto scene = test_scene();
  FusionJobConfig undisturbed = full_config(scene, 3, 3);
  undisturbed.resilient = true;
  undisturbed.replication = 2;

  FusionJobConfig attacked = undisturbed;
  attacked.failures = {{from_millis(600), 2, -1}};  // kill a worker node

  const FusionReport clean = run_fusion_job(undisturbed);
  const FusionReport hit = run_fusion_job(attacked);
  ASSERT_TRUE(clean.completed);
  ASSERT_TRUE(hit.completed);
  EXPECT_EQ(hit.crashes_injected, 1);
  EXPECT_GE(hit.protocol.failures_detected, 1u);
  EXPECT_GE(hit.protocol.replicas_regenerated, 1u);
  EXPECT_GT(hit.protocol.state_transfer_bytes, 0u);

  // The attacked run must produce the exact same fused image.
  EXPECT_EQ(hit.outcome.composite.data, clean.outcome.composite.data);
  // And pay for it in elapsed time.
  EXPECT_GE(hit.elapsed_seconds, clean.elapsed_seconds);
}

TEST(DistributedResilienceTest, SurvivesTwoSpacedCrashes) {
  const auto scene = test_scene();
  FusionJobConfig config = full_config(scene, 3, 3);
  config.resilient = true;
  config.replication = 2;
  config.failures = {{from_millis(500), 1, -1}, {from_millis(1500), 3, -1}};
  const FusionReport r = run_fusion_job(config);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.protocol.replicas_regenerated, 2u);

  FusionJobConfig clean = full_config(scene, 3, 3);
  clean.resilient = true;
  clean.replication = 2;
  const FusionReport reference = run_fusion_job(clean);
  EXPECT_EQ(r.outcome.composite.data, reference.outcome.composite.data);
}

TEST(DistributedResilienceTest, NonResilientRunDiesOnCrash) {
  const auto scene = test_scene();
  FusionJobConfig config = full_config(scene, 3, 2);
  config.failures = {{from_millis(500), 2, -1}};
  config.deadline = from_seconds(60);
  const FusionReport r = run_fusion_job(config);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.crashes_injected, 1);
}

TEST(DistributedResilienceTest, ReplicationWithoutRegenerationDegrades) {
  // Kill the two nodes hosting both replicas of worker 0: with
  // regeneration the job survives; without it the group is lost.
  const auto scene = test_scene();
  FusionJobConfig base = full_config(scene, 3, 3);
  base.resilient = true;
  base.replication = 2;
  base.failures = {{from_millis(500), 1, -1}, {from_millis(1500), 2, -1}};

  FusionJobConfig with_regen = base;
  with_regen.regenerate = true;
  const FusionReport good = run_fusion_job(with_regen);
  EXPECT_TRUE(good.completed);

  FusionJobConfig no_regen = base;
  no_regen.regenerate = false;
  no_regen.deadline = from_seconds(120);
  const FusionReport bad = run_fusion_job(no_regen);
  EXPECT_FALSE(bad.completed);
  EXPECT_GE(bad.protocol.groups_lost, 1u);
}

TEST(DistributedResilienceTest, CostOnlyRecoveryAtPaperScale) {
  FusionJobConfig config = cost_only_config(8, 2);
  config.resilient = true;
  config.replication = 2;
  config.runtime.heartbeat_period = from_millis(250);
  config.runtime.failure_timeout = from_seconds(1);
  config.failures = {{from_seconds(20), 3, -1}};
  const FusionReport r = run_fusion_job(config);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.protocol.replicas_regenerated, 1u);
}

}  // namespace
}  // namespace rif::core
