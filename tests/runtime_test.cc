// Tests of the adaptive runtime control plane (src/runtime/): the
// MetricsRegistry series semantics (counters, sum/max gauges, histogram
// buckets, cross-registry merge, JSON snapshot), the shared chunk-geometry
// bounds, the ChunkAutotuner's convergence and hysteresis on synthetic
// stall traces (no engine, no disk, no clock — the controller is driven
// purely by observations), and the ThreadPool metrics wiring.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/parallel/thread_pool.h"
#include "runtime/autotuner.h"
#include "runtime/chunk_geometry.h"
#include "runtime/metrics.h"

namespace rif::runtime {
namespace {

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsTest, CounterAccumulatesAndNamesAreStable) {
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name => same series; different name => fresh series.
  EXPECT_EQ(&reg.counter("events"), &c);
  EXPECT_EQ(reg.counter("other").value(), 0u);
  EXPECT_EQ(reg.counter_value("events"), 42u);
  EXPECT_EQ(reg.counter_value("never-created"), 0u);
}

TEST(MetricsTest, GaugeKindsSumAndMax) {
  MetricsRegistry reg;
  Gauge& sum = reg.gauge("stall_seconds", GaugeKind::kSum);
  sum.record(1.5);
  sum.record(2.5);
  EXPECT_DOUBLE_EQ(sum.value(), 4.0);

  Gauge& peak = reg.gauge("peak_bytes", GaugeKind::kMax);
  peak.record(100.0);
  peak.record(40.0);  // below the high-water: ignored
  peak.record(250.0);
  EXPECT_DOUBLE_EQ(peak.value(), 250.0);

  peak.set(7.0);  // snapshot overwrite bypasses the kind
  EXPECT_DOUBLE_EQ(peak.value(), 7.0);
}

TEST(MetricsTest, HistogramCountsSumsAndQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);

  for (int i = 0; i < 90; ++i) h.observe(1e-3);  // ~1 ms
  for (int i = 0; i < 10; ++i) h.observe(1.0);   // 1 s tail
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 0.09 + 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  // Bucket-resolution estimates: p50 lands in the ~1ms bucket (upper edge
  // < 2ms), p99 in the 1s bucket.
  EXPECT_LE(h.quantile(0.50), 2e-3);
  EXPECT_GT(h.quantile(0.99), 0.5);
  EXPECT_LE(h.quantile(0.99), 1.0 + 1e-12);
}

TEST(MetricsTest, MergeIntoPrefixesAndFollowsSeriesSemantics) {
  MetricsRegistry job;
  job.counter("bytes").add(1000);
  job.gauge("stall", GaugeKind::kSum).record(2.0);
  job.gauge("peak", GaugeKind::kMax).record(300.0);
  job.histogram("lat").observe(0.25);

  MetricsRegistry service;
  service.counter("stream.bytes").add(11);
  service.gauge("stream.stall", GaugeKind::kSum).record(1.0);
  service.gauge("stream.peak", GaugeKind::kMax).record(500.0);

  job.merge_into(service, "stream.");
  EXPECT_EQ(service.counter_value("stream.bytes"), 1011u);          // add
  EXPECT_DOUBLE_EQ(service.gauge_value("stream.stall"), 3.0);       // add
  EXPECT_DOUBLE_EQ(service.gauge_value("stream.peak"), 500.0);      // max
  const Histogram* h = service.find_histogram("stream.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.25);
  EXPECT_DOUBLE_EQ(h->min(), 0.25);

  // A second job's peak below the service high-water does not lower it.
  MetricsRegistry job2;
  job2.gauge("peak", GaugeKind::kMax).record(120.0);
  job2.merge_into(service, "stream.");
  EXPECT_DOUBLE_EQ(service.gauge_value("stream.peak"), 500.0);
}

TEST(MetricsTest, JsonSnapshotCarriesEverySeries) {
  MetricsRegistry reg;
  reg.counter("service.completed").add(3);
  reg.gauge("pool.utilization").set(0.75);
  reg.histogram("tenant.ana.latency_seconds").observe(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"service.completed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"pool.utilization\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"tenant.ana.latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

// --- chunk geometry bounds ---------------------------------------------------

TEST(ChunkGeometryTest, SharedBoundsAcceptAndRejectConsistently) {
  EXPECT_EQ(validate_chunk_geometry(1, 3), nullptr);
  EXPECT_EQ(validate_chunk_geometry(64, 4), nullptr);
  EXPECT_EQ(validate_chunk_geometry(kMaxChunkLines, kMaxQueueDepth), nullptr);

  EXPECT_NE(validate_chunk_geometry(0, 4), nullptr);   // zero chunk
  EXPECT_NE(validate_chunk_geometry(-5, 4), nullptr);
  EXPECT_NE(validate_chunk_geometry(kMaxChunkLines + 1, 4), nullptr);
  EXPECT_NE(validate_chunk_geometry(64, 0), nullptr);  // no pipeline slots
  EXPECT_NE(validate_chunk_geometry(64, 2), nullptr);
  EXPECT_NE(validate_chunk_geometry(64, kMaxQueueDepth + 1), nullptr);
}

// --- ChunkAutotuner ----------------------------------------------------------

AutotuneConfig tune_config() {
  AutotuneConfig cfg;
  cfg.min_chunk_lines = 4;
  cfg.max_chunk_lines = 256;
  cfg.epoch_chunks = 2;
  cfg.grow_factor = 2.0;
  cfg.dead_band = 0.10;
  return cfg;
}

/// One synthetic chunk observation. Stall seconds are the signal; the
/// read/compute components only normalize the fractions.
TuneObservation reader_bound() { return {0.01, 0.08, 0.0, 0.01}; }
TuneObservation compute_bound() { return {0.01, 0.0, 0.08, 0.01}; }
TuneObservation balanced() { return {0.04, 0.005, 0.005, 0.05}; }

TEST(AutotunerTest, ReaderStalledTraceGrowsToMax) {
  ChunkAutotuner tuner(tune_config(), 16, 4, 1000);
  for (int i = 0; i < 20; ++i) tuner.observe(reader_bound());
  EXPECT_EQ(tuner.chunk_lines(), 256);  // converged at the clamp
  // Strictly monotone growth along the trajectory, one decision per epoch.
  const auto& traj = tuner.trajectory();
  ASSERT_EQ(traj.size(), 10u);
  int prev = 16;
  for (const auto& d : traj) {
    EXPECT_GE(d.chunk_lines, prev);
    prev = d.chunk_lines;
  }
}

TEST(AutotunerTest, ComputeStalledTraceShrinksToMinAndDeepensQueue) {
  ChunkAutotuner tuner(tune_config(), 64, 4, 1000);
  for (int i = 0; i < 20; ++i) tuner.observe(compute_bound());
  EXPECT_EQ(tuner.chunk_lines(), 4);  // converged at the floor
  // I/O-bound: more read-ahead, budget unlimited => toward max depth.
  EXPECT_GT(tuner.queue_depth(), 4);
}

TEST(AutotunerTest, BalancedTraceHoldsGeometry) {
  ChunkAutotuner tuner(tune_config(), 32, 4, 1000);
  for (int i = 0; i < 20; ++i) tuner.observe(balanced());
  EXPECT_EQ(tuner.chunk_lines(), 32);
  EXPECT_EQ(tuner.queue_depth(), 4);
  for (const auto& d : tuner.trajectory()) EXPECT_EQ(d.direction, 0);
}

TEST(AutotunerTest, OscillatingTraceIsDampedByReversalHysteresis) {
  // Alternate one reader-bound epoch with one compute-bound epoch. An
  // undamped controller would flip direction every epoch; reversal
  // hysteresis requires two consecutive opposing epochs, which an
  // alternating signal never delivers — so after the first move the tuner
  // parks instead of thrashing.
  ChunkAutotuner tuner(tune_config(), 32, 4, 1000);
  for (int cycle = 0; cycle < 10; ++cycle) {
    tuner.observe(reader_bound());
    tuner.observe(reader_bound() );
    tuner.observe(compute_bound());
    tuner.observe(compute_bound());
  }
  int reversals = 0;
  int last = 0;
  for (const auto& d : tuner.trajectory()) {
    if (d.direction != 0 && last != 0 && d.direction == -last) ++reversals;
    if (d.direction != 0) last = d.direction;
  }
  // 20 epochs of perfectly alternating signal: without damping every
  // second epoch reverses (~9 reversals); with it, each reversal needs two
  // consecutive opposing epochs, which the alternation never provides
  // after the initial move — allow the pathological first one only.
  EXPECT_LE(reversals, 1);
  EXPECT_GE(tuner.chunk_lines(), 4);
  EXPECT_LE(tuner.chunk_lines(), 256);
}

TEST(AutotunerTest, SingleOpposingEpochDoesNotReverseAConfirmedTrend) {
  ChunkAutotuner tuner(tune_config(), 16, 4, 1000);
  // Establish growth.
  tuner.observe(reader_bound());
  tuner.observe(reader_bound());
  const int grown = tuner.chunk_lines();
  EXPECT_GT(grown, 16);
  // One opposing epoch: held (pending reversal), not acted on.
  tuner.observe(compute_bound());
  tuner.observe(compute_bound());
  EXPECT_EQ(tuner.chunk_lines(), grown);
  // Second consecutive opposing epoch: the reversal is real, act.
  tuner.observe(compute_bound());
  tuner.observe(compute_bound());
  EXPECT_LT(tuner.chunk_lines(), grown);
}

TEST(AutotunerTest, MemoryBudgetClampsGrowthAndTradesDepthForWidth) {
  AutotuneConfig cfg = tune_config();
  // 1000 B/line, depth 4 => budget affords 32 lines/chunk at full depth.
  cfg.memory_budget = 4 * 32 * 1000;
  ChunkAutotuner tuner(cfg, 16, 4, 1000);
  tuner.observe(reader_bound());
  tuner.observe(reader_bound());
  EXPECT_EQ(tuner.chunk_lines(), 32);  // budget clamp at depth 4
  // Further pressure trades queue depth for width instead of stalling:
  // depth drops toward the minimum, freeing budget for wider chunks, but
  // depth x chunk_bytes stays within the admitted budget throughout.
  for (int i = 0; i < 10; ++i) tuner.observe(reader_bound());
  EXPECT_GE(tuner.queue_depth(), 3);
  EXPECT_GT(tuner.chunk_lines(), 32);
  for (const auto& d : tuner.trajectory()) {
    EXPECT_LE(static_cast<std::uint64_t>(d.queue_depth) *
                  static_cast<std::uint64_t>(d.chunk_lines) * 1000u,
              cfg.memory_budget);
  }
}

TEST(AutotunerTest, InitialGeometryIsClampedIntoBounds) {
  AutotuneConfig cfg = tune_config();
  cfg.memory_budget = 3 * 8 * 1000;  // affords 8 lines at min depth
  ChunkAutotuner tuner(cfg, 512, 9, 1000);
  EXPECT_LE(static_cast<std::uint64_t>(tuner.queue_depth()) *
                static_cast<std::uint64_t>(tuner.chunk_lines()) * 1000u,
            cfg.memory_budget);
  EXPECT_GE(tuner.chunk_lines(), 1);
  EXPECT_GE(tuner.queue_depth(), 3);
}

TEST(AutotunerTest, ReportCarriesTrajectoryEndpoints) {
  ChunkAutotuner tuner(tune_config(), 16, 4, 1000);
  for (int i = 0; i < 6; ++i) tuner.observe(reader_bound());
  const AutotuneReport report = tuner.report();
  EXPECT_TRUE(report.enabled);
  EXPECT_EQ(report.initial_chunk_lines, 16);
  EXPECT_EQ(report.final_chunk_lines, tuner.chunk_lines());
  EXPECT_GT(report.final_chunk_lines, report.initial_chunk_lines);
  EXPECT_EQ(report.trajectory.size(), 3u);
}

// --- ThreadPool wiring -------------------------------------------------------

TEST(PoolMetricsTest, TasksAndHelpsLandInTheRegistry) {
  MetricsRegistry reg;
  core::ThreadPool pool(2);
  pool.bind_metrics(reg, "pool.");
  std::atomic<int> ran{0};
  // Nested parallelism: outer tasks block in an inner parallel_tasks and
  // must HELP execute queued work — the helped_tasks counter is exactly
  // the help-while-waiting steals the pool's design note promises.
  pool.parallel_tasks(4, [&](int) {
    pool.parallel_tasks(8, [&](int) { ++ran; });
  });
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(reg.counter_value("pool.tasks_executed"), 4u + 32u);
  EXPECT_GT(reg.counter_value("pool.helped_tasks"), 0u);
}

}  // namespace
}  // namespace rif::runtime
