#include <gtest/gtest.h>

#include "core/sam_classifier.h"
#include "hsi/scene.h"
#include "hsi/spectra.h"

namespace rif::core {
namespace {

std::vector<LibrarySignature> material_library(
    const std::vector<double>& wavelengths,
    const std::vector<hsi::Material>& materials) {
  std::vector<LibrarySignature> lib;
  for (const auto m : materials) {
    lib.push_back({hsi::material_name(m), hsi::signature(m, wavelengths)});
  }
  return lib;
}

TEST(SamTest, PureSignaturesClassifyExactly) {
  const auto wl = hsi::band_wavelengths(32);
  const auto lib = material_library(
      wl, {hsi::Material::kForest, hsi::Material::kSoil,
           hsi::Material::kVehicle});
  hsi::ImageCube cube(3, 1, 32);
  for (int x = 0; x < 3; ++x) {
    const auto sig = lib[x].spectrum;
    std::copy(sig.begin(), sig.end(), cube.pixel(x, 0).begin());
  }
  const SamResult r = classify_sam(cube, lib);
  EXPECT_EQ(r.classes[0], 0);
  EXPECT_EQ(r.classes[1], 1);
  EXPECT_EQ(r.classes[2], 2);
  for (int x = 0; x < 3; ++x) EXPECT_NEAR(r.angles[x], 0.0, 1e-6);
}

TEST(SamTest, IlluminationScaleDoesNotChangeClass) {
  const auto wl = hsi::band_wavelengths(24);
  const auto lib = material_library(
      wl, {hsi::Material::kForest, hsi::Material::kVehicle});
  hsi::ImageCube cube(2, 1, 24);
  const auto veh = lib[1].spectrum;
  for (int b = 0; b < 24; ++b) {
    cube.pixel(0, 0)[b] = veh[b] * 0.3f;  // shadowed vehicle
    cube.pixel(1, 0)[b] = veh[b] * 1.7f;  // overexposed vehicle
  }
  const SamResult r = classify_sam(cube, lib);
  EXPECT_EQ(r.classes[0], 1);
  EXPECT_EQ(r.classes[1], 1);
}

TEST(SamTest, RejectionThresholdLeavesOddPixelsUnclassified) {
  const auto wl = hsi::band_wavelengths(16);
  const auto lib = material_library(wl, {hsi::Material::kForest});
  hsi::ImageCube cube(1, 1, 16);
  // A spectrally alien pixel: alternating spikes.
  for (int b = 0; b < 16; ++b) {
    cube.pixel(0, 0)[b] = (b % 2 == 0) ? 1.0f : 0.01f;
  }
  SamConfig config;
  config.rejection_threshold = 0.1;
  const SamResult r = classify_sam(cube, lib, config);
  EXPECT_EQ(r.classes[0], kUnclassified);
  EXPECT_EQ(r.unclassified, 1);
}

TEST(SamTest, CountsSumToPixels) {
  const auto scene = hsi::generate_scene({.width = 32, .height = 32,
                                          .bands = 24, .seed = 8});
  const auto lib = material_library(
      scene.wavelengths,
      {hsi::Material::kForest, hsi::Material::kGrass, hsi::Material::kSoil,
       hsi::Material::kRoad, hsi::Material::kVehicle});
  const SamResult r = classify_sam(scene.cube, lib);
  std::int64_t total = r.unclassified;
  for (const auto c : r.counts) total += c;
  EXPECT_EQ(total, scene.cube.pixel_count());
}

TEST(SamTest, SceneClassificationIsMostlyCorrect) {
  hsi::SceneConfig config;
  config.width = 64;
  config.height = 64;
  config.bands = 32;
  config.seed = 19;
  const auto scene = hsi::generate_scene(config);
  const std::vector<hsi::Material> mats = {
      hsi::Material::kForest, hsi::Material::kGrass, hsi::Material::kSoil,
      hsi::Material::kRoad, hsi::Material::kVehicle,
      hsi::Material::kShadow};
  const auto lib = material_library(scene.wavelengths, mats);
  const SamResult r = classify_sam(scene.cube, lib);
  std::vector<int> mapping;
  for (const auto m : mats) mapping.push_back(static_cast<int>(m));
  const double accuracy = sam_accuracy(r, scene.labels, mapping);
  // Camouflage is not in the library (it imitates forest) and mixes exist
  // at region borders, so demand "most" not "all".
  EXPECT_GT(accuracy, 0.80);
}

TEST(SamTest, ConfusionRowsCoverEveryPixel) {
  const auto scene = hsi::generate_scene({.width = 24, .height = 24,
                                          .bands = 16, .seed = 5});
  const auto lib = material_library(scene.wavelengths,
                                    {hsi::Material::kForest,
                                     hsi::Material::kGrass});
  const SamResult r = classify_sam(scene.cube, lib);
  const auto rows = confusion_by_label(r, scene.labels);
  std::int64_t total = 0;
  for (const auto& row : rows) {
    std::int64_t row_sum = row.unclassified;
    for (const auto a : row.assigned) row_sum += a;
    EXPECT_EQ(row_sum, row.total);
    total += row.total;
  }
  EXPECT_EQ(total, scene.cube.pixel_count());
}

TEST(SamTest, BandMismatchAborts) {
  const auto wl = hsi::band_wavelengths(16);
  const auto lib = material_library(wl, {hsi::Material::kForest});
  hsi::ImageCube cube(2, 2, 8);  // 8 bands vs library's 16
  EXPECT_DEATH((void)classify_sam(cube, lib), "mismatch");
}

}  // namespace
}  // namespace rif::core
