// Tests of the distributed telemetry plane: the kTelemetry wire codec and
// its trust-boundary rejections, span-batch balance checking, flamegraph
// folding (hand-built spans, tracer extraction, Chrome-trace re-parsing),
// the metrics scraper's live NDJSON sink, histogram quantile summaries,
// the per-site log rate limiter, the coordinator-side telemetry collector
// (dedupe, rejection, clock alignment, idempotent metric merges), and one
// end-to-end service run whose unified trace carries per-worker pid lanes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/remote_worker.h"
#include "hsi/scene.h"
#include "obs/chrome_trace.h"
#include "obs/flamegraph.h"
#include "obs/metrics_scraper.h"
#include "obs/remote_telemetry.h"
#include "obs/span_tracer.h"
#include "obs/trace_check.h"
#include "runtime/metrics.h"
#include "scp/wire.h"
#include "service/service.h"
#include "support/log.h"

namespace rif {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

// --- kTelemetry wire codec ---------------------------------------------------

scp::TelemetryBody sample_body() {
  scp::TelemetryBody body;
  body.job_id = 7;
  body.flush_index = 3;
  body.spans.push_back({"remote.screen_shard", 1000, 250, 7, 0.0, 'X'});
  body.spans.push_back({"remote.resend", 1200, 0, 7, 0.0, 'i'});
  body.spans.push_back({"remote.queue_depth", 1300, 0, -1, 4.5, 'C'});
  body.counters.emplace_back("tiles_screened", 12);
  body.counters.emplace_back("jobs", 1);
  body.gauges.emplace_back("utilization", 0, 0.75);
  body.gauges.emplace_back("peak_bytes", 1, 4096.0);
  scp::TelemetryHistogram h;
  h.name = "screen_seconds";
  h.count = 12;
  h.sum = 0.5;
  h.min = 0.01;
  h.max = 0.2;
  h.buckets.assign(scp::kTelemetryHistogramBuckets, 0);
  h.buckets[5] = 12;
  body.histograms.push_back(h);
  return body;
}

TEST(TelemetryCodecTest, RoundTripsSpansMetricsAndHistograms) {
  const scp::TelemetryBody body = sample_body();
  const auto decoded = scp::TelemetryBody::try_decode(body.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->job_id, 7);
  EXPECT_EQ(decoded->flush_index, 3u);
  ASSERT_EQ(decoded->spans.size(), 3u);
  EXPECT_EQ(decoded->spans[0].name, "remote.screen_shard");
  EXPECT_EQ(decoded->spans[0].ts_ns, 1000u);
  EXPECT_EQ(decoded->spans[0].dur_ns, 250u);
  EXPECT_EQ(decoded->spans[0].job, 7);
  EXPECT_EQ(decoded->spans[0].phase, 'X');
  EXPECT_EQ(decoded->spans[2].phase, 'C');
  EXPECT_DOUBLE_EQ(decoded->spans[2].value, 4.5);
  ASSERT_EQ(decoded->counters.size(), 2u);
  EXPECT_EQ(decoded->counters[0].first, "tiles_screened");
  EXPECT_EQ(decoded->counters[0].second, 12u);
  ASSERT_EQ(decoded->gauges.size(), 2u);
  EXPECT_EQ(std::get<1>(decoded->gauges[1]), 1);
  ASSERT_EQ(decoded->histograms.size(), 1u);
  EXPECT_EQ(decoded->histograms[0].count, 12u);
  EXPECT_EQ(decoded->histograms[0].buckets.size(),
            scp::kTelemetryHistogramBuckets);
  EXPECT_EQ(decoded->histograms[0].buckets[5], 12u);
}

TEST(TelemetryCodecTest, RejectsTruncatedPayload) {
  std::vector<std::uint8_t> bytes = sample_body().encode();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(keep));
    EXPECT_FALSE(scp::TelemetryBody::try_decode(cut).has_value())
        << "decoded at " << keep << " bytes";
  }
}

TEST(TelemetryCodecTest, RejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes = sample_body().encode();
  bytes.push_back(0);
  EXPECT_FALSE(scp::TelemetryBody::try_decode(bytes).has_value());
}

TEST(TelemetryCodecTest, RejectsBadPhaseAndBadGaugeKind) {
  scp::TelemetryBody body = sample_body();
  body.spans[0].phase = 'Q';
  EXPECT_FALSE(scp::TelemetryBody::try_decode(body.encode()).has_value());

  body = sample_body();
  std::get<1>(body.gauges[0]) = 9;  // only kSum(0)/kMax(1) exist
  EXPECT_FALSE(scp::TelemetryBody::try_decode(body.encode()).has_value());
}

TEST(TelemetryCodecTest, RejectsWrongHistogramBucketCount) {
  scp::TelemetryBody body = sample_body();
  body.histograms[0].buckets.resize(scp::kTelemetryHistogramBuckets - 1);
  EXPECT_FALSE(scp::TelemetryBody::try_decode(body.encode()).has_value());
}

TEST(TelemetryCodecTest, RejectsEmptyAndAbsurdNames) {
  scp::TelemetryBody body = sample_body();
  body.spans[0].name.clear();
  EXPECT_FALSE(scp::TelemetryBody::try_decode(body.encode()).has_value());

  body = sample_body();
  body.counters[0].first.assign(100000, 'x');
  EXPECT_FALSE(scp::TelemetryBody::try_decode(body.encode()).has_value());
}

TEST(TelemetryCodecTest, EnvelopeCarriesTelemetryKindButNotBeyond) {
  scp::WireEnvelope env;
  env.kind = scp::FrameKind::kTelemetry;
  env.src_node = 3;
  env.payload = sample_body().encode();
  const std::vector<std::uint8_t> frame = env.encode();
  const auto decoded = scp::WireEnvelope::try_decode(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, scp::FrameKind::kTelemetry);
  ASSERT_TRUE(scp::TelemetryBody::try_decode(decoded->payload).has_value());

  // One past the last kind must be rejected at the envelope boundary. The
  // kind byte is part of the checksummed region, so flip it AND re-encode
  // via a fresh envelope rather than patching bytes.
  scp::WireEnvelope bad = env;
  bad.kind = static_cast<scp::FrameKind>(
      static_cast<int>(scp::FrameKind::kTelemetry) + 1);
  EXPECT_FALSE(scp::WireEnvelope::try_decode(bad.encode()).has_value());
}

// --- span-batch balance gate -------------------------------------------------

TEST(SpanBatchCheckTest, AcceptsBalancedAndCompleteEvents) {
  std::string error;
  EXPECT_TRUE(obs::check_span_batch(
      {{"a", 'B'}, {"b", 'B'}, {"b", 'E'}, {"a", 'E'}, {"x", 'X'},
       {"t", 'i'}, {"c", 'C'}},
      error))
      << error;
}

TEST(SpanBatchCheckTest, RejectsUnbalancedBatches) {
  std::string error;
  // E with no open B.
  EXPECT_FALSE(obs::check_span_batch({{"a", 'E'}}, error));
  // E crossing a different open span.
  EXPECT_FALSE(
      obs::check_span_batch({{"a", 'B'}, {"b", 'E'}, {"a", 'E'}}, error));
  // B left open at batch end.
  EXPECT_FALSE(obs::check_span_batch({{"a", 'B'}}, error));
  // Unknown phase.
  EXPECT_FALSE(obs::check_span_batch({{"a", 'Z'}}, error));
}

// --- flamegraph folding ------------------------------------------------------

TEST(FlamegraphTest, FoldsSelfAndTotalTime) {
  std::vector<obs::FlameSpan> spans;
  spans.push_back({"parent", 0.0, 100.0, 1});
  spans.push_back({"child", 10.0, 30.0, 1});
  spans.push_back({"child", 50.0, 20.0, 1});
  spans.push_back({"other", 0.0, 40.0, 2});  // different track: no shadow
  const obs::FlameTable table = obs::fold_spans(std::move(spans));

  const obs::FlameRow* parent = table.find("parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->count, 1u);
  EXPECT_NEAR(parent->total_us, 100.0, 1e-9);
  EXPECT_NEAR(parent->self_us, 50.0, 1e-9);  // 100 - 30 - 20

  const obs::FlameRow* child = table.find("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->count, 2u);
  EXPECT_NEAR(child->total_us, 50.0, 1e-9);
  EXPECT_NEAR(child->self_us, 50.0, 1e-9);

  const obs::FlameRow* other = table.find("other");
  ASSERT_NE(other, nullptr);
  EXPECT_NEAR(other->self_us, 40.0, 1e-9);

  // Time conservation: sum of self == sum of track root durations.
  double self_sum = 0.0;
  for (const obs::FlameRow& row : table.rows) self_sum += row.self_us;
  EXPECT_NEAR(self_sum, 140.0, 1e-9);

  // JSON shape parses with the in-repo parser.
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::parse_json(table.to_json(), v, err)) << err;
  const obs::JsonValue* rows = v.find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->array.size(), table.rows.size());
}

TEST(FlamegraphTest, TracerAndChromeTraceFoldsAgree) {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  tracer.set_enabled(true);
  {
    RIF_TRACE_SPAN("outer");
    RIF_TRACE_SPAN("inner");
  }
  {
    RIF_TRACE_SPAN("outer");
  }
  tracer.set_enabled(false);

  const obs::FlameTable from_tracer = obs::fold_tracer(tracer);
  const obs::FlameRow* outer = from_tracer.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);

  const std::string path = temp_path("rif_flame_agree.json");
  ASSERT_TRUE(obs::write_chrome_trace(path, tracer));
  std::string err;
  const auto from_file = obs::fold_chrome_trace_file(path, err);
  ASSERT_TRUE(from_file.has_value()) << err;
  for (const obs::FlameRow& row : from_tracer.rows) {
    const obs::FlameRow* again = from_file->find(row.name);
    ASSERT_NE(again, nullptr) << row.name;
    EXPECT_EQ(again->count, row.count) << row.name;
    EXPECT_NEAR(again->total_us, row.total_us,
                std::max(row.total_us * 0.01, 1.0))
        << row.name;
  }
  std::remove(path.c_str());
  tracer.clear();
}

// --- scraper live sink and quantile summaries --------------------------------

TEST(MetricsStreamTest, OnScrapeEmitsOneParseableLinePerScrape) {
  runtime::MetricsRegistry reg;
  obs::MetricsScraper::Config cfg;
  cfg.period_seconds = 3600.0;  // only the explicit scrapes below fire
  obs::MetricsScraper scraper(reg, cfg);
  std::vector<std::string> lines;
  scraper.set_on_scrape([&lines](const std::string& line) {
    lines.push_back(line);
  });
  reg.counter("a").add(1);
  scraper.scrape_now();
  reg.counter("a").add(2);
  reg.histogram("lat").observe(0.01);
  scraper.scrape_now();
  scraper.scrape_now();
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::parse_json(line, v, err)) << err << " in " << line;
    EXPECT_NE(v.find("counters"), nullptr);
  }
  // Deltas: second line saw the counter move by 2.
  EXPECT_NE(lines[1].find("\"a\""), std::string::npos);
  // The histogram summary carries bucket-resolution quantiles.
  EXPECT_NE(lines[1].find("\"p50\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"p95\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"p99\""), std::string::npos);
}

TEST(MetricsQuantileTest, SummaryAndJsonCarryOrderedQuantiles) {
  runtime::MetricsRegistry reg;
  runtime::Histogram& h = reg.histogram("lat");
  for (int i = 0; i < 90; ++i) h.observe(0.001);
  for (int i = 0; i < 9; ++i) h.observe(0.1);
  h.observe(10.0);

  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p99, 0.1);  // rank 99 of 100 is the last 0.1s observation
  EXPECT_GE(h.quantile(1.0), 10.0);  // the max lands in the 10s bucket

  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::parse_json(reg.to_json(), v, err)) << err;
  const obs::JsonValue* hist = v.find("histograms");
  ASSERT_NE(hist, nullptr);
  const obs::JsonValue* lat = hist->find("lat");
  ASSERT_NE(lat, nullptr);
  const obs::JsonValue* jp95 = lat->find("p95");
  ASSERT_NE(jp95, nullptr);
  EXPECT_DOUBLE_EQ(jp95->number, p95);
  EXPECT_NE(lat->find("p50"), nullptr);
  EXPECT_NE(lat->find("p99"), nullptr);
}

TEST(MetricsInstallTest, InstallHistogramIsIdempotentOverwrite) {
  runtime::MetricsRegistry reg;
  std::vector<std::uint64_t> buckets(
      static_cast<std::size_t>(runtime::Histogram::kBuckets), 0);
  buckets[3] = 5;
  reg.install_histogram("shipped", 5, 0.25, 0.01, 0.1, buckets);
  reg.install_histogram("shipped", 5, 0.25, 0.01, 0.1, buckets);  // re-ship
  const runtime::Histogram* h = reg.find_histogram("shipped");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.25);
  EXPECT_EQ(h->bucket(3), 5u);
  EXPECT_DOUBLE_EQ(h->min(), 0.01);
  EXPECT_DOUBLE_EQ(h->max(), 0.1);
}

// --- trace_check: counters and pid lanes -------------------------------------

TEST(TraceCheckTest, CountersNeedNumericValueAndPidsAreTallied) {
  obs::ChromeTraceWriter writer;
  writer.add({"spanA", 'B', 1.0, -1.0, 1, 1, ""});
  writer.add({"spanA", 'E', 5.0, -1.0, 1, 1, ""});
  writer.add({"q", 'C', 2.0, -1.0, 2, 1, "\"value\": 3.5"});
  writer.add({"work", 'X', 1.0, 2.0, 101, 1, ""});
  const obs::TraceCheckResult ok = obs::check_chrome_trace(writer.to_json());
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.pids, 3u);
  EXPECT_EQ(ok.counters, 1u);
  EXPECT_EQ(ok.spans, 2u);  // the B/E pair and the X event

  obs::ChromeTraceWriter bad;
  bad.add({"q", 'C', 2.0, -1.0, 1, 1, "\"note\": \"no value\""});
  const obs::TraceCheckResult r = obs::check_chrome_trace(bad.to_json());
  EXPECT_FALSE(r.ok);
}

// --- log rate limiter --------------------------------------------------------

TEST(LogRateLimiterTest, AllowsOncePerPeriodAndCountsSuppressed) {
  LogRateLimiter limiter;
  std::uint64_t suppressed = 99;
  EXPECT_TRUE(limiter.allow(3600.0, &suppressed));
  EXPECT_EQ(suppressed, 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(limiter.allow(3600.0, &suppressed));
  }

  LogRateLimiter free_limiter;
  EXPECT_TRUE(free_limiter.allow(0.0, &suppressed));
  EXPECT_TRUE(free_limiter.allow(0.0, &suppressed));
}

// --- RemoteTelemetryCollector ------------------------------------------------

TEST(RemoteTelemetryTest, DedupesByFlushIndexAndRejectsUnbalanced) {
  obs::RemoteTelemetryCollector collector;
  scp::TelemetryBody body;
  body.job_id = 4;
  body.flush_index = 1;
  body.spans.push_back({"remote.job", 100, 50, 4, 0.0, 'X'});
  EXPECT_TRUE(collector.on_batch(9, body));
  EXPECT_EQ(collector.spans(), 1u);

  // Re-shipment of the same flush index: dropped, counted, not re-merged.
  EXPECT_FALSE(collector.on_batch(9, body));
  EXPECT_EQ(collector.duplicates(), 1u);
  EXPECT_EQ(collector.spans(), 1u);

  // Unbalanced B without E: the whole batch is rejected.
  scp::TelemetryBody bad;
  bad.flush_index = 2;
  bad.spans.push_back({"open", 200, 0, 4, 0.0, 'B'});
  EXPECT_FALSE(collector.on_batch(9, bad));
  EXPECT_EQ(collector.rejected(), 1u);
  EXPECT_EQ(collector.spans(), 1u);

  const std::vector<cluster::NodeId> nodes = collector.nodes_with_job(4);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 9);
  EXPECT_TRUE(collector.nodes_with_job(5).empty());
}

// The service's telemetry barrier must wait for the END-of-job flush (the
// one carrying scp::kJobSpanName), not any mid-job periodic batch that
// merely mentions the job — otherwise the report snapshots a half lane.
TEST(RemoteTelemetryTest, JobEndRequiresTheWholeJobSpan) {
  obs::RemoteTelemetryCollector collector;

  // Mid-job periodic flush: one shard span tagged with the job.
  scp::TelemetryBody mid;
  mid.job_id = 7;
  mid.flush_index = 1;
  mid.spans.push_back({"remote.screen_shard", 100, 40, 7, 0.0, 'X'});
  EXPECT_TRUE(collector.on_batch(3, mid));
  EXPECT_EQ(collector.nodes_with_job(7).size(), 1u);
  EXPECT_TRUE(collector.nodes_with_job_end(7).empty());

  // Job-end force flush: carries the whole-job span.
  scp::TelemetryBody fin;
  fin.job_id = 7;
  fin.flush_index = 2;
  fin.spans.push_back({scp::kJobSpanName, 80, 200, 7, 0.0, 'X'});
  EXPECT_TRUE(collector.on_batch(3, fin));
  const std::vector<cluster::NodeId> ended = collector.nodes_with_job_end(7);
  ASSERT_EQ(ended.size(), 1u);
  EXPECT_EQ(ended[0], 3);
  EXPECT_TRUE(collector.nodes_with_job_end(8).empty());
}

TEST(RemoteTelemetryTest, NormalizesBalancedBeginEndToCompleteSpans) {
  obs::RemoteTelemetryCollector collector;
  scp::TelemetryBody body;
  body.flush_index = 1;
  body.spans.push_back({"outer", 1000, 0, 2, 0.0, 'B'});
  body.spans.push_back({"inner", 1200, 0, 2, 0.0, 'B'});
  body.spans.push_back({"inner", 1700, 0, 2, 0.0, 'E'});
  body.spans.push_back({"outer", 2000, 0, 2, 0.0, 'E'});
  ASSERT_TRUE(collector.on_batch(3, body));

  const std::vector<obs::FlameSpan> spans = collector.flame_spans(0);
  ASSERT_EQ(spans.size(), 2u);
  const obs::FlameTable table = obs::fold_spans(spans);
  const obs::FlameRow* outer = table.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NEAR(outer->total_us, 1.0, 1e-9);   // 1000ns
  EXPECT_NEAR(outer->self_us, 0.5, 1e-9);    // minus inner's 500ns
}

TEST(RemoteTelemetryTest, ClockOffsetShiftsWorkerSpansOntoHostAxis) {
  obs::RemoteTelemetryCollector collector;
  scp::TelemetryBody body;
  body.flush_index = 1;
  // Worker clock runs 5us AHEAD of the coordinator's.
  body.spans.push_back({"w", 10000, 1000, 1, 0.0, 'X'});
  ASSERT_TRUE(collector.on_batch(2, body));
  collector.set_clock_offset(2, 5000);
  EXPECT_EQ(collector.clock_offset_ns(2), 5000);

  // coordinator time = worker_ts - offset; epoch 0 => 5000ns = 5us.
  const std::vector<obs::FlameSpan> spans = collector.flame_spans(0);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_NEAR(spans[0].ts_us, 5.0, 1e-9);
  EXPECT_NEAR(spans[0].dur_us, 1.0, 1e-9);
}

TEST(RemoteTelemetryTest, MergesMetricsIdempotentlyUnderNodePrefix) {
  obs::RemoteTelemetryCollector collector;
  scp::TelemetryBody body;
  body.flush_index = 1;
  body.counters.emplace_back("tiles", 10);
  body.gauges.emplace_back("util", 0, 0.5);
  scp::TelemetryHistogram h;
  h.name = "screen_seconds";
  h.count = 3;
  h.sum = 0.3;
  h.min = 0.05;
  h.max = 0.2;
  h.buckets.assign(scp::kTelemetryHistogramBuckets, 0);
  h.buckets[2] = 3;
  body.histograms.push_back(h);
  ASSERT_TRUE(collector.on_batch(5, body));

  runtime::MetricsRegistry reg;
  collector.merge_metrics_into(reg);
  collector.merge_metrics_into(reg);  // same shipped state: no double count
  EXPECT_EQ(reg.counter_value("remote.worker.5.tiles"), 10u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("remote.worker.5.util"), 0.5);
  const runtime::Histogram* merged =
      reg.find_histogram("remote.worker.5.screen_seconds");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), 3u);

  // A later shipment with larger totals advances the counter by the delta.
  scp::TelemetryBody next;
  next.flush_index = 2;
  next.counters.emplace_back("tiles", 14);
  ASSERT_TRUE(collector.on_batch(5, next));
  collector.merge_metrics_into(reg);
  EXPECT_EQ(reg.counter_value("remote.worker.5.tiles"), 14u);
}

// --- shipped log records -----------------------------------------------------

TEST(TelemetryCodecTest, RoundTripsLogRecords) {
  scp::TelemetryBody body = sample_body();
  body.logs.push_back({2, "worker", "job 7 start (32x32x12)", 7, 5000});
  body.logs.push_back({3, "serve", "resend requested", -1, 6000});
  const auto decoded = scp::TelemetryBody::try_decode(body.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->logs.size(), 2u);
  EXPECT_EQ(decoded->logs[0].level, 2);
  EXPECT_EQ(decoded->logs[0].component, "worker");
  EXPECT_EQ(decoded->logs[0].message, "job 7 start (32x32x12)");
  EXPECT_EQ(decoded->logs[0].job, 7);
  EXPECT_EQ(decoded->logs[0].ts_ns, 5000u);
  EXPECT_EQ(decoded->logs[1].level, 3);
  EXPECT_EQ(decoded->logs[1].job, -1);
}

TEST(TelemetryCodecTest, RejectsHostileLogSections) {
  // Truncation anywhere inside the logs section fails whole, like every
  // other section.
  scp::TelemetryBody body = sample_body();
  body.logs.push_back({2, "worker", "hello", 1, 100});
  const std::vector<std::uint8_t> bytes = body.encode();
  const std::vector<std::uint8_t> base = sample_body().encode();
  for (std::size_t keep = base.size(); keep < bytes.size(); ++keep) {
    const std::vector<std::uint8_t> cut(
        bytes.begin(), bytes.begin() + static_cast<long>(keep));
    EXPECT_FALSE(scp::TelemetryBody::try_decode(cut).has_value())
        << "decoded at " << keep << " bytes";
  }

  // A level outside rif::LogLevel's range is hostile.
  body = sample_body();
  body.logs.push_back({9, "worker", "bad level", 1, 100});
  EXPECT_FALSE(scp::TelemetryBody::try_decode(body.encode()).has_value());

  // A message past the wire bound is hostile (memory-bomb defence).
  body = sample_body();
  body.logs.push_back({2, "worker", std::string(513, 'x'), 1, 100});
  EXPECT_FALSE(scp::TelemetryBody::try_decode(body.encode()).has_value());

  // As is a record count past the batch bound.
  body = sample_body();
  for (int i = 0; i < 1025; ++i) {
    body.logs.push_back({2, "worker", "spam", 1, 100});
  }
  EXPECT_FALSE(scp::TelemetryBody::try_decode(body.encode()).has_value());
}

TEST(RemoteTelemetryTest, ForwardsLogsOnlyFromAcceptedBatches) {
  obs::RemoteTelemetryCollector collector;
  std::vector<std::pair<cluster::NodeId, std::string>> forwarded;
  collector.set_log_sink(
      [&forwarded](cluster::NodeId node, const scp::TelemetryLog& l) {
        forwarded.emplace_back(node, l.message);
      });

  scp::TelemetryBody body;
  body.flush_index = 1;
  body.logs.push_back({2, "worker", "leased in", -1, 100});
  ASSERT_TRUE(collector.on_batch(4, body));
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0].first, 4);
  EXPECT_EQ(forwarded[0].second, "leased in");
  EXPECT_EQ(collector.log_records(), 1u);

  // A re-shipment (duplicate flush index) must not double-log.
  EXPECT_FALSE(collector.on_batch(4, body));
  EXPECT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(collector.log_records(), 1u);

  // An unbalanced span batch is rejected whole — logs riding it included.
  scp::TelemetryBody bad;
  bad.flush_index = 2;
  bad.spans.push_back({"remote.screen_shard", 100, 0, 1, 0.0, 'B'});
  bad.logs.push_back({2, "worker", "should not appear", -1, 200});
  EXPECT_FALSE(collector.on_batch(4, bad));
  EXPECT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(collector.log_records(), 1u);
}

// --- cluster-wide histogram aggregation --------------------------------------

scp::TelemetryHistogram histogram_of(const runtime::Histogram& h,
                                     const std::string& name) {
  scp::TelemetryHistogram out;
  out.name = name;
  out.count = h.count();
  out.sum = h.sum();
  out.min = h.min();
  out.max = h.max();
  out.buckets.reserve(scp::kTelemetryHistogramBuckets);
  for (int b = 0; b < runtime::Histogram::kBuckets; ++b) {
    out.buckets.push_back(h.bucket(b));
  }
  return out;
}

TEST(RemoteTelemetryTest, ClusterHistogramQuantilesMatchAllSamples) {
  // Three workers observe disjoint latency populations; the merged
  // remote.cluster series must answer quantiles exactly as a single
  // histogram that saw every observation (bucket sums commute with the
  // bucket-edge quantile estimate).
  runtime::MetricsRegistry ref;
  runtime::Histogram& all = ref.histogram("all");
  obs::RemoteTelemetryCollector collector;
  std::uint64_t seed = 42;
  for (int worker = 0; worker < 3; ++worker) {
    runtime::MetricsRegistry local;
    runtime::Histogram& mine = local.histogram("screen_seconds");
    for (int i = 0; i < 200; ++i) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      // Spread across several log2 buckets, different range per worker.
      const double v = (1.0 + static_cast<double>(seed % 997)) * 1e-5 *
                       static_cast<double>(1 << (2 * worker));
      mine.observe(v);
      all.observe(v);
    }
    scp::TelemetryBody body;
    body.flush_index = 1;
    body.histograms.push_back(histogram_of(mine, "screen_seconds"));
    ASSERT_TRUE(
        collector.on_batch(static_cast<cluster::NodeId>(10 + worker), body));
  }

  runtime::MetricsRegistry target;
  collector.merge_metrics_into(target);
  collector.merge_metrics_into(target);  // idempotent like the per-node series
  const runtime::Histogram* merged =
      target.find_histogram("remote.cluster.screen_seconds");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), all.count());
  EXPECT_DOUBLE_EQ(merged->sum(), all.sum());
  EXPECT_DOUBLE_EQ(merged->min(), all.min());
  EXPECT_DOUBLE_EQ(merged->max(), all.max());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(merged->quantile(q), all.quantile(q)) << "q=" << q;
  }
  // The per-node series stay alongside the cluster roll-up.
  EXPECT_NE(target.find_histogram("remote.worker.10.screen_seconds"), nullptr);
  EXPECT_NE(target.find_histogram("remote.worker.12.screen_seconds"), nullptr);
}

// --- end to end: unified trace from a real service run -----------------------

TEST(TelemetryEndToEndTest, ServiceRunShipsWorkerLanesIntoOneTrace) {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  tracer.set_enabled(true);

  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 32;
  scene_cfg.height = 32;
  scene_cfg.bands = 12;
  scene_cfg.seed = 33;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);

  const std::string stream_path = temp_path("rif_telemetry_e2e.ndjson");
  service::ServiceConfig cfg;
  cfg.worker_nodes = 1;
  cfg.execution_threads = 2;
  cfg.remote_workers = 2;
  cfg.remote_spawn_local = true;
  cfg.scrape_period_seconds = 0.02;
  cfg.metrics_stream_path = stream_path;
  service::FusionService service(cfg);

  service::JobRequest r;
  r.tenant = "edge";
  r.config.mode = core::ExecutionMode::kFull;
  r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
  r.config.cube = &scene.cube;
  r.config.workers = 3;
  r.config.tiles_per_worker = 2;
  const service::SubmitResult submitted = service.submit(std::move(r));
  ASSERT_TRUE(submitted.accepted());
  const service::ServiceReport report = service.run();
  tracer.set_enabled(false);
  ASSERT_TRUE(report.all_completed);
  ASSERT_EQ(report.remote_jobs, 1);

  // Every worker that served the job shipped at least one span, and the
  // report surfaces the ingest health.
  const obs::RemoteTelemetryCollector* telemetry = service.remote_telemetry();
  ASSERT_NE(telemetry, nullptr);
  EXPECT_GT(telemetry->batches(), 0u);
  EXPECT_GT(telemetry->spans(), 0u);
  EXPECT_EQ(telemetry->rejected(), 0u);
  EXPECT_EQ(report.remote_telemetry_batches, telemetry->batches());
  EXPECT_FALSE(telemetry->nodes_with_job(submitted.id).empty());
  // The barrier waited for the end-of-job flush, so the whole-job span
  // (not just a mid-job periodic batch) is in the lane.
  EXPECT_FALSE(telemetry->nodes_with_job_end(submitted.id).empty());

  // The unified trace validates and carries the coordinator lane plus one
  // pid lane per worker.
  const std::string trace_path = temp_path("rif_telemetry_e2e_trace.json");
  ASSERT_TRUE(obs::write_unified_trace(trace_path, tracer, *telemetry));
  const obs::TraceCheckResult tc = obs::check_chrome_trace_file(trace_path);
  ASSERT_TRUE(tc.ok) << tc.error;
  EXPECT_GE(tc.pids, 3u);

  // The report's flamegraph folds host and remote stages together.
  EXPECT_NE(report.flamegraph.find("remote.job"), nullptr);
  // service_run is still open at report time; remote_execute has closed.
  EXPECT_NE(report.flamegraph.find("remote_execute"), nullptr);
  EXPECT_FALSE(report.flamegraph_json.empty());

  // The live stream was written during the run; once telemetry merged, the
  // per-node series appear under their prefixes.
  std::ifstream in(stream_path);
  std::size_t lines = 0;
  bool saw_remote = false;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::parse_json(line, v, err)) << err;
    if (line.find("remote.worker.") != std::string::npos) saw_remote = true;
    ++lines;
  }
  EXPECT_GE(lines, 2u);
  EXPECT_TRUE(saw_remote);

  std::remove(trace_path.c_str());
  std::remove(stream_path.c_str());
  tracer.clear();
}

}  // namespace
}  // namespace rif
