#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"
#include "sim/timer.h"
#include "sim/trace.h"
#include "sim/trace_export.h"

#include <filesystem>
#include <fstream>

namespace rif::sim {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulationTest, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(from_seconds(3.0), [&] { order.push_back(3); });
  sim.schedule_at(from_seconds(1.0), [&] { order.push_back(1); });
  sim.schedule_at(from_seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), from_seconds(3.0));
}

TEST(SimulationTest, TiesBreakInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(from_seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, ScheduleAfterAdvancesClock) {
  Simulation sim;
  SimTime seen = -1;
  sim.schedule_after(from_millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, from_millis(5));
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(from_millis(1), chain);
  };
  sim.schedule_after(from_millis(1), chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), from_millis(5));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_after(from_millis(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulationTest, CancelUnknownIsNoOp) {
  Simulation sim;
  sim.cancel(EventId{999});
  bool fired = false;
  sim.schedule_after(1, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, CancelFiredIsNoOp) {
  Simulation sim;
  const EventId id = sim.schedule_after(1, [] {});
  sim.run();
  sim.cancel(id);  // must not crash or corrupt state
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(from_seconds(1.0), [&] { order.push_back(1); });
  sim.schedule_at(from_seconds(5.0), [&] { order.push_back(5); });
  const bool drained = sim.run_until(from_seconds(2.0));
  EXPECT_FALSE(drained);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), from_seconds(2.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(SimulationTest, RunUntilReportsDrained) {
  Simulation sim;
  sim.schedule_at(from_seconds(1.0), [] {});
  EXPECT_TRUE(sim.run_until(from_seconds(10.0)));
  EXPECT_EQ(sim.now(), from_seconds(10.0));
}

TEST(SimulationTest, SchedulingIntoPastAborts) {
  Simulation sim;
  sim.schedule_at(from_seconds(2.0), [] {});
  sim.run();
  EXPECT_DEATH((void)sim.schedule_at(from_seconds(1.0), [] {}), "past");
}

TEST(SimulationTest, PendingCountTracksQueue) {
  Simulation sim;
  const EventId a = sim.schedule_after(1, [] {});
  sim.schedule_after(2, [] {});
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(PeriodicTimerTest, FiresRepeatedly) {
  Simulation sim;
  int fires = 0;
  PeriodicTimer timer(sim, from_millis(10), [&] { ++fires; });
  timer.start();
  sim.run_until(from_millis(55));
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimerTest, StopHalts) {
  Simulation sim;
  int fires = 0;
  PeriodicTimer timer(sim, from_millis(10), [&] {
    if (++fires == 3) timer.stop();
  });
  timer.start();
  sim.run();
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimerTest, RestartRearms) {
  Simulation sim;
  int fires = 0;
  PeriodicTimer timer(sim, from_millis(10), [&] { ++fires; });
  timer.start();
  sim.run_until(from_millis(25));
  timer.stop();
  sim.run_until(from_millis(100));
  EXPECT_EQ(fires, 2);
  timer.start();
  sim.run_until(from_millis(125));
  EXPECT_EQ(fires, 4);
}

TEST(TraceTest, CountsByKind) {
  TraceRecorder trace;
  trace.set_enabled(true);
  trace.record({0, TraceKind::kMessageSent, 1, 2, 100, {}});
  trace.record({1, TraceKind::kMessageSent, 2, 1, 50, {}});
  trace.record({2, TraceKind::kNodeFailed, 1, -1, 0, {}});
  EXPECT_EQ(trace.count(TraceKind::kMessageSent), 2u);
  EXPECT_EQ(trace.count(TraceKind::kNodeFailed), 1u);
  EXPECT_EQ(trace.count(TraceKind::kReplicaSpawned), 0u);
}

TEST(TraceTest, DisabledRecordsNothing) {
  TraceRecorder trace;
  trace.record({0, TraceKind::kMessageSent, 1, 2, 100, {}});
  EXPECT_TRUE(trace.records().empty());
}

TEST(TraceExportTest, JsonlRoundTripParses) {
  TraceRecorder trace;
  trace.set_enabled(true);
  trace.record({from_seconds(1.5), TraceKind::kMessageSent, 1, 2, 100, {}});
  trace.record({from_seconds(2.0), TraceKind::kNodeFailed, 3, -1, 0,
                "strike \"alpha\""});
  const auto path =
      (std::filesystem::temp_directory_path() / "rif_trace.jsonl").string();
  ASSERT_TRUE(export_trace_jsonl(trace, path));
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"kind\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::filesystem::remove(path);
}

TEST(TraceExportTest, SummaryCountsKinds) {
  TraceRecorder trace;
  trace.set_enabled(true);
  trace.record({0, TraceKind::kMessageSent, 1, 2, 100, {}});
  trace.record({1, TraceKind::kMessageSent, 2, 1, 50, {}});
  trace.record({2, TraceKind::kReplicaSpawned, 1, 0, 3, {}});
  const std::string summary = summarize_trace(trace);
  EXPECT_NE(summary.find("message_sent: 2"), std::string::npos);
  EXPECT_NE(summary.find("value sum 150"), std::string::npos);
  EXPECT_NE(summary.find("replica_spawned: 1"), std::string::npos);
}

TEST(TraceTest, KindNamesAreStable) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kMessageSent), "message_sent");
  EXPECT_STREQ(trace_kind_name(TraceKind::kReplicaSpawned), "replica_spawned");
}

}  // namespace
}  // namespace rif::sim
