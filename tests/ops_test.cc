// Tests of the live ops plane: the structured log ring and Logger sink
// hooks, the OpsServer request vocabulary over real sockets, concurrent
// subscribe-metrics fan-out with telescoping deltas, the slow-subscriber
// drop guard, hostile/corrupt request isolation (one session dies, the
// service and every other subscriber keep going), and one end-to-end
// FusionService run whose ops endpoint answers status/metrics/logs while
// remote workers ship node-attributed log records over kTelemetry.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "hsi/scene.h"
#include "net/socket_transport.h"
#include "obs/metrics_scraper.h"
#include "obs/ops_server.h"
#include "obs/trace_check.h"
#include "runtime/metrics.h"
#include "service/service.h"
#include "support/log.h"

namespace rif {
namespace {

bool send_text(net::SocketClient& client, const std::string& text) {
  return client.send_frame(
      std::vector<std::uint8_t>(text.begin(), text.end()));
}

bool read_text(net::SocketClient& client, std::string& out) {
  std::vector<std::uint8_t> frame;
  if (!client.read_frame(frame)) return false;
  out.assign(frame.begin(), frame.end());
  return true;
}

std::vector<std::string> split_lines(const std::string& body) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < body.size()) {
    const std::size_t nl = body.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(body.substr(start));
      break;
    }
    lines.push_back(body.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// --- LogRing / Logger sink ---------------------------------------------------

TEST(LogRingTest, BoundedDropOldestWithTally) {
  LogRing ring(2);
  for (int i = 0; i < 3; ++i) {
    LogRecord r;
    r.message = "m" + std::to_string(i);
    ring.append(std::move(r));
  }
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.total(), 3u);
  EXPECT_EQ(ring.dropped(), 1u);
  const std::vector<LogRecord> tail = ring.tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].message, "m1");  // oldest first, m0 evicted
  EXPECT_EQ(tail[1].message, "m2");
  EXPECT_EQ(ring.tail(1).size(), 1u);
  EXPECT_EQ(ring.tail(1)[0].message, "m2");
}

TEST(LoggerSinkTest, CapturesStructuredRecordsWhileInstalled) {
  Logger& logger = Logger::instance();
  const LogLevel before = logger.level();
  logger.set_level(LogLevel::kInfo);
  EXPECT_FALSE(logger.sink_installed());

  LogRing ring(16);
  logger.set_sink(&ring);
  EXPECT_TRUE(logger.sink_installed());
  log_set_job_context(7);
  RIF_LOG_INFO("optest", "captured line");
  // Below the threshold: the RIF_LOG macro never reaches write(), so the
  // sink sees only lines that would have hit stderr.
  RIF_LOG_DEBUG("optest", "not captured");
  log_set_job_context(kLogNoJob);
  logger.remove_sink(&ring);
  EXPECT_FALSE(logger.sink_installed());
  RIF_LOG_INFO("optest", "after removal");
  logger.set_level(before);

  ASSERT_EQ(ring.size(), 1u);
  const LogRecord r = ring.tail(1)[0];
  EXPECT_EQ(r.level, LogLevel::kInfo);
  EXPECT_EQ(r.component, "optest");
  EXPECT_EQ(r.message, "captured line");  // raw text, no "[job N]" prefix
  EXPECT_EQ(r.job, 7);
  EXPECT_EQ(r.node, -1);
}

TEST(LoggerSinkTest, ThreadCaptureClaimsTheThreadInsteadOfTheSink) {
  Logger& logger = Logger::instance();
  const LogLevel before = logger.level();
  logger.set_level(LogLevel::kInfo);
  LogRing ring(16);
  logger.set_sink(&ring);

  std::vector<std::string> captured;
  const std::function<void(const LogRecord&)> capture =
      [&captured](const LogRecord& r) { captured.push_back(r.message); };
  log_set_thread_capture(&capture);
  RIF_LOG_INFO("optest", "worker-side line");
  log_set_thread_capture(nullptr);
  RIF_LOG_INFO("optest", "coordinator line");

  logger.remove_sink(&ring);
  logger.set_level(before);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "worker-side line");
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.tail(1)[0].message, "coordinator line");
}

TEST(LogRecordJsonTest, EscapesAndCarriesAttribution) {
  LogRecord r;
  r.level = LogLevel::kWarn;
  r.component = "serve";
  r.message = "path \"a\\b\"";
  r.job = 3;
  r.t_seconds = 1.5;
  r.node = 4;
  const std::string line = obs::log_record_json(r);
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::parse_json(line, v, err)) << err << ": " << line;
  EXPECT_NE(line.find("\"level\":\"WARN\""), std::string::npos);
  EXPECT_NE(line.find("\"component\":\"serve\""), std::string::npos);
  EXPECT_NE(line.find("\"node\":4"), std::string::npos);
  EXPECT_NE(line.find("\"job\":3"), std::string::npos);
  EXPECT_NE(line.find("\\\"a\\\\b\\\""), std::string::npos);
}

// --- OpsServer vocabulary ----------------------------------------------------

struct OpsFixture {
  LogRing ring{8};
  obs::OpsServer server;

  OpsFixture()
      : server(obs::OpsServerConfig{},
               obs::OpsServer::Providers{
                   [] { return std::string("{\"status\":\"ok\"}"); },
                   [] { return std::string("{\"counters\":{}}"); },
                   [] { return std::string("{\"total_us\":0}"); },
                   &ring}) {}
};

TEST(OpsServerTest, AnswersEveryCommandOnOneSession) {
  OpsFixture fx;
  for (int i = 0; i < 3; ++i) {
    LogRecord r;
    r.message = "record " + std::to_string(i);
    r.node = i;
    fx.ring.append(std::move(r));
  }
  ASSERT_TRUE(fx.server.start());

  net::SocketClient client;
  ASSERT_TRUE(client.connect_tcp("127.0.0.1", fx.server.port()));
  std::string reply;

  ASSERT_TRUE(send_text(client, "status") && read_text(client, reply));
  EXPECT_EQ(reply, "{\"status\":\"ok\"}");
  ASSERT_TRUE(send_text(client, "metrics") && read_text(client, reply));
  EXPECT_EQ(reply, "{\"counters\":{}}");
  ASSERT_TRUE(send_text(client, "flamegraph") && read_text(client, reply));
  EXPECT_EQ(reply, "{\"total_us\":0}");

  // Whitespace-trimmed commands are fine (a netcat user hits enter).
  ASSERT_TRUE(send_text(client, "logs\n") && read_text(client, reply));
  EXPECT_EQ(split_lines(reply).size(), 3u);
  ASSERT_TRUE(send_text(client, "logs 2") && read_text(client, reply));
  const std::vector<std::string> lines = split_lines(reply);
  ASSERT_EQ(lines.size(), 2u);  // newest two, oldest first
  EXPECT_NE(lines[0].find("record 1"), std::string::npos);
  EXPECT_NE(lines[1].find("record 2"), std::string::npos);

  ASSERT_TRUE(send_text(client, "subscribe-metrics") &&
              read_text(client, reply));
  EXPECT_EQ(reply, "{\"subscribed\":true}");
  EXPECT_EQ(fx.server.subscribers(), 1u);
  EXPECT_EQ(fx.server.requests(), 6u);
  EXPECT_EQ(fx.server.bad_requests(), 0u);
  client.close();
}

TEST(OpsServerTest, NullProvidersAnswerErrorsInsteadOfDying) {
  obs::OpsServer server(obs::OpsServerConfig{}, obs::OpsServer::Providers{});
  ASSERT_TRUE(server.start());
  net::SocketClient client;
  ASSERT_TRUE(client.connect_tcp("127.0.0.1", server.port()));
  std::string reply;
  ASSERT_TRUE(send_text(client, "status") && read_text(client, reply));
  EXPECT_NE(reply.find("\"error\""), std::string::npos);
  ASSERT_TRUE(send_text(client, "logs") && read_text(client, reply));
  EXPECT_NE(reply.find("\"error\""), std::string::npos);
  client.close();
}

TEST(OpsServerTest, ThreeSubscribersSeeTelescopingDeltas) {
  runtime::MetricsRegistry registry;
  obs::MetricsScraper scraper(registry);
  OpsFixture fx;
  ASSERT_TRUE(fx.server.start());
  scraper.set_on_scrape(
      [&fx](const std::string& line) { fx.server.publish_metrics_sample(line); });

  net::SocketClient clients[3];
  for (net::SocketClient& c : clients) {
    ASSERT_TRUE(c.connect_tcp("127.0.0.1", fx.server.port()));
    std::string ack;
    ASSERT_TRUE(send_text(c, "subscribe-metrics") && read_text(c, ack));
    EXPECT_EQ(ack, "{\"subscribed\":true}");
  }
  EXPECT_EQ(fx.server.subscribers(), 3u);

  for (int i = 0; i < 3; ++i) {
    registry.counter("ops.work").add(1);
    scraper.scrape_now();  // pushes one NDJSON frame to every subscriber
  }

  for (net::SocketClient& c : clients) {
    for (int i = 1; i <= 3; ++i) {
      std::string line;
      ASSERT_TRUE(read_text(c, line));
      // Raw totals telescope while each scrape's delta stays 1.
      const std::string expect =
          "\"ops.work\": {\"v\": " + std::to_string(i) + ", \"d\": 1}";
      EXPECT_NE(line.find(expect), std::string::npos) << line;
    }
    c.close();
  }
  EXPECT_EQ(fx.server.frames_dropped(), 0u);
}

TEST(OpsServerTest, SlowSubscriberLosesFramesNotTheSession) {
  obs::OpsServerConfig cfg;
  cfg.max_subscriber_backlog_bytes = 1024;
  obs::OpsServer server(cfg, obs::OpsServer::Providers{});
  ASSERT_TRUE(server.start());

  net::SocketClient slow;
  ASSERT_TRUE(slow.connect_tcp("127.0.0.1", server.port()));
  std::string ack;
  ASSERT_TRUE(send_text(slow, "subscribe-metrics") && read_text(slow, ack));

  // A payload far past kernel socket buffering guarantees the unsent
  // backlog exceeds the cap while the subscriber refuses to read; every
  // following push must be dropped, not queued, and the scraper-side
  // publish call must never block.
  const std::string big(8 << 20, 'x');
  server.publish_metrics_sample(big);
  for (int i = 0; i < 200 && server.frames_dropped() == 0; ++i) {
    server.publish_metrics_sample("{\"t\":0}");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(server.frames_dropped(), 0u);
  // Dropping is not disconnecting: the subscriber session stays.
  EXPECT_EQ(server.subscribers(), 1u);
  slow.close();
}

// --- hostile input: session isolation ----------------------------------------

TEST(OpsServerTest, HostileAndCorruptFramesCloseOnlyTheirSession) {
  OpsFixture fx;
  ASSERT_TRUE(fx.server.start());

  // A well-behaved subscriber attaches first.
  net::SocketClient good;
  ASSERT_TRUE(good.connect_tcp("127.0.0.1", fx.server.port()));
  std::string ack;
  ASSERT_TRUE(send_text(good, "subscribe-metrics") && read_text(good, ack));

  // Hostile frame: valid RIF1 framing, binary garbage payload.
  {
    net::SocketClient bad;
    ASSERT_TRUE(bad.connect_tcp("127.0.0.1", fx.server.port()));
    ASSERT_TRUE(bad.send_frame({0x00, 0xff, 0x13, 0x37}));
    std::vector<std::uint8_t> frame;
    EXPECT_FALSE(bad.read_frame(frame));  // session closed, no reply
    bad.close();
  }
  // Unknown vocabulary closes the session too.
  {
    net::SocketClient bad;
    ASSERT_TRUE(bad.connect_tcp("127.0.0.1", fx.server.port()));
    ASSERT_TRUE(send_text(bad, "drop-tables"));
    std::vector<std::uint8_t> frame;
    EXPECT_FALSE(bad.read_frame(frame));
    bad.close();
  }
  // Oversized request (past max_request_bytes): hostile by construction.
  {
    net::SocketClient bad;
    ASSERT_TRUE(bad.connect_tcp("127.0.0.1", fx.server.port()));
    ASSERT_TRUE(send_text(bad, std::string(512, 'a')));
    std::vector<std::uint8_t> frame;
    EXPECT_FALSE(bad.read_frame(frame));
    bad.close();
  }
  // Corrupt wire bytes (not even RIF1 frames), several seeded variants:
  // the frame assembler poisons that session; nothing else notices.
  std::uint64_t seed = 1234;
  for (int round = 0; round < 3; ++round) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    std::uint8_t junk[64];
    for (std::uint8_t& b : junk) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<std::uint8_t>(seed >> 33);
    }
    ASSERT_EQ(::send(fd, junk, sizeof(junk), 0),
              static_cast<ssize_t>(sizeof(junk)));
    char buf[16];
    EXPECT_LE(::recv(fd, buf, sizeof(buf), 0), 0);  // closed on us
    ::close(fd);
  }

  EXPECT_GE(fx.server.bad_requests(), 3u);
  // The surviving subscriber still gets pushes, and new sessions still get
  // answers: the service never died and never wedged.
  fx.server.publish_metrics_sample("{\"t\":1}");
  std::string line;
  ASSERT_TRUE(read_text(good, line));
  EXPECT_EQ(line, "{\"t\":1}");
  net::SocketClient after;
  ASSERT_TRUE(after.connect_tcp("127.0.0.1", fx.server.port()));
  std::string reply;
  ASSERT_TRUE(send_text(after, "status") && read_text(after, reply));
  EXPECT_EQ(reply, "{\"status\":\"ok\"}");
  after.close();
  good.close();
}

// --- end to end: a real service with remote workers --------------------------

TEST(OpsEndToEndTest, ServiceAnswersOpsRequestsWhileWorkersShipLogs) {
  Logger& logger = Logger::instance();
  const LogLevel level_before = logger.level();
  // Info level so the worker lifecycle lines exist to ship; the thread
  // capture in the in-process serve loops claims them for kTelemetry.
  logger.set_level(LogLevel::kInfo);

  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 32;
  scene_cfg.height = 32;
  scene_cfg.bands = 12;
  scene_cfg.seed = 7;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);

  service::ServiceConfig cfg;
  cfg.worker_nodes = 1;
  cfg.execution_threads = 2;
  cfg.remote_workers = 2;
  cfg.remote_spawn_local = true;  // socketpair-backed worker threads
  cfg.scrape_period_seconds = 0.02;
  cfg.ops_enabled = true;
  service::FusionService service(cfg);
  ASSERT_NE(service.ops_server(), nullptr);
  ASSERT_NE(service.log_ring(), nullptr);
  const std::uint16_t port = service.ops_server()->port();
  ASSERT_NE(port, 0);

  // Two concurrent subscribers attach BEFORE the run and stream samples
  // while jobs execute on the remote workers.
  net::SocketClient subs[2];
  for (net::SocketClient& c : subs) {
    ASSERT_TRUE(c.connect_tcp("127.0.0.1", port));
    std::string ack;
    ASSERT_TRUE(send_text(c, "subscribe-metrics") && read_text(c, ack));
    EXPECT_EQ(ack, "{\"subscribed\":true}");
  }

  service::JobRequest r;
  r.tenant = "ops";
  r.config.mode = core::ExecutionMode::kFull;
  r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
  r.config.cube = &scene.cube;
  r.config.workers = 3;
  r.config.tiles_per_worker = 2;
  const service::SubmitResult submitted = service.submit(std::move(r));
  ASSERT_TRUE(submitted.accepted());
  const service::ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);
  ASSERT_EQ(report.remote_jobs, 1);

  // Each subscriber collects two live NDJSON samples over the wire (the
  // scraper keeps streaming after run() while the ops plane is up, so this
  // never races the run's length).
  for (net::SocketClient& c : subs) {
    for (int i = 0; i < 2; ++i) {
      std::string line;
      ASSERT_TRUE(read_text(c, line));
      obs::JsonValue v;
      std::string err;
      ASSERT_TRUE(obs::parse_json(line, v, err)) << err;
      EXPECT_NE(line.find("\"counters\""), std::string::npos);
    }
  }

  net::SocketClient client;
  ASSERT_TRUE(client.connect_tcp("127.0.0.1", port));
  std::string reply;

  // status: job counts and the leased workers with liveness.
  ASSERT_TRUE(send_text(client, "status") && read_text(client, reply));
  EXPECT_NE(reply.find("\"completed\": 1"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"workers\": [{\"node\": 2"), std::string::npos)
      << reply;
  EXPECT_NE(reply.find("\"subscribers\": 2"), std::string::npos) << reply;

  // metrics: the merged cluster-wide histograms are in the snapshot,
  // alongside the per-node series.
  ASSERT_TRUE(send_text(client, "metrics") && read_text(client, reply));
  EXPECT_NE(reply.find("remote.cluster.screen_seconds"), std::string::npos);
  EXPECT_NE(reply.find("remote.worker.2."), std::string::npos);

  // logs: worker lifecycle records appear with node attribution (nodes 2
  // and 3 — worker_nodes=1, so remote ids start at 2), next to the
  // coordinator's own node:-1 lines.
  ASSERT_TRUE(send_text(client, "logs 512") && read_text(client, reply));
  EXPECT_NE(reply.find("\"node\":-1"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"node\":2"), std::string::npos) << reply;
  EXPECT_NE(reply.find("leased in as node"), std::string::npos) << reply;
  EXPECT_NE(reply.find("run complete"), std::string::npos) << reply;

  // flamegraph on demand answers a parseable document.
  ASSERT_TRUE(send_text(client, "flamegraph") && read_text(client, reply));
  obs::JsonValue v;
  std::string err;
  EXPECT_TRUE(obs::parse_json(reply, v, err)) << err;

  // The report surfaces the ops-plane and log-plane health.
  EXPECT_GT(report.remote_log_records, 0u);
  EXPECT_GT(report.log_records_captured, 0u);
  EXPECT_EQ(report.ops_bad_requests, 0u);

  client.close();
  logger.set_level(level_before);
  // Regression: the service is destroyed HERE with two live subscribers
  // still attached and the scraper mid-period — teardown must stop the
  // scrape thread before the ops server and registry go away (no
  // use-after-free, no hang). The subscribers' sockets just see EOF.
}

}  // namespace
}  // namespace rif
