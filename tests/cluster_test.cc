#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/failure_injector.h"
#include "cluster/placement.h"
#include "sim/simulation.h"

namespace rif::cluster {
namespace {

NodeConfig fast_node() {
  NodeConfig c;
  c.flops_per_second = 1e9;
  c.dispatch_overhead = 0;
  return c;
}

TEST(NodeTest, ComputeTakesFlopsOverSpeed) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(fast_node());
  SimTime done_at = -1;
  cluster.node(id).submit_compute(1e9, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, from_seconds(1.0));
}

TEST(NodeTest, ComputeIsFifoSerialized) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(fast_node());
  std::vector<int> order;
  SimTime second_done = -1;
  cluster.node(id).submit_compute(1e9, [&] { order.push_back(1); });
  cluster.node(id).submit_compute(1e9, [&] {
    order.push_back(2);
    second_done = sim.now();
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Two 1-second tasks on one CPU: the second finishes at t=2 — this FIFO
  // sharing is what makes co-located replicas cost 2x.
  EXPECT_EQ(second_done, from_seconds(2.0));
}

TEST(NodeTest, DispatchOverheadCharged) {
  sim::Simulation sim;
  Cluster cluster(sim);
  NodeConfig cfg = fast_node();
  cfg.dispatch_overhead = from_micros(10);
  const NodeId id = cluster.add_node(cfg);
  SimTime done_at = -1;
  cluster.node(id).submit_compute(0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, from_micros(10));
}

TEST(NodeTest, FailureDropsQueuedCompletions) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(fast_node());
  bool fired = false;
  cluster.node(id).submit_compute(1e9, [&] { fired = true; });
  sim.schedule_at(from_millis(500), [&] { cluster.fail_node(id); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(cluster.node(id).alive());
}

TEST(NodeTest, TimersDieWithNode) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(fast_node());
  bool fired = false;
  cluster.node(id).run_after(from_seconds(1.0), [&] { fired = true; });
  sim.schedule_at(from_millis(10), [&] { cluster.fail_node(id); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(NodeTest, RestoreStartsFreshEpoch) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(fast_node());
  bool old_fired = false;
  bool new_fired = false;
  cluster.node(id).run_after(from_seconds(2.0), [&] { old_fired = true; });
  sim.schedule_at(from_millis(10), [&] { cluster.fail_node(id); });
  sim.schedule_at(from_millis(20), [&] {
    cluster.restore_node(id);
    cluster.node(id).run_after(from_millis(1), [&] { new_fired = true; });
  });
  sim.run();
  EXPECT_FALSE(old_fired);  // pre-failure timer must not survive restore
  EXPECT_TRUE(new_fired);
}

TEST(NodeTest, FlopsAccounting) {
  sim::Simulation sim;
  Cluster cluster(sim);
  const NodeId id = cluster.add_node(fast_node());
  cluster.node(id).submit_compute(100.0, [] {});
  cluster.node(id).submit_compute(250.0, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(cluster.node(id).flops_charged(), 350.0);
}

TEST(ClusterTest, AliveBookkeeping) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_nodes(4);
  EXPECT_EQ(cluster.alive_count(), 4);
  cluster.fail_node(2);
  EXPECT_EQ(cluster.alive_count(), 3);
  const auto alive = cluster.alive_nodes();
  EXPECT_EQ(alive, (std::vector<NodeId>{0, 1, 3}));
  cluster.restore_node(2);
  EXPECT_EQ(cluster.alive_count(), 4);
}

TEST(ClusterTest, FailureRecordsTrace) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.trace().set_enabled(true);
  cluster.add_nodes(2);
  cluster.fail_node(1);
  cluster.fail_node(1);  // idempotent
  EXPECT_EQ(cluster.trace().count(sim::TraceKind::kNodeFailed), 1u);
}

TEST(FailureInjectorTest, ScriptedCrashFires) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_nodes(3);
  FailureInjector injector(cluster);
  injector.schedule_crash(from_seconds(1.0), 1);
  sim.run();
  EXPECT_FALSE(cluster.node(1).alive());
  EXPECT_EQ(injector.crashes_injected(), 1);
}

TEST(FailureInjectorTest, RepairRestoresNode) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_nodes(2);
  FailureInjector injector(cluster);
  injector.schedule_crash(from_seconds(1.0), 0, from_seconds(2.0));
  sim.run_until(from_seconds(1.5));
  EXPECT_FALSE(cluster.node(0).alive());
  sim.run();
  EXPECT_TRUE(cluster.node(0).alive());
}

TEST(FailureInjectorTest, PoissonScheduleIsDeterministic) {
  sim::Simulation sim1, sim2;
  Cluster c1(sim1), c2(sim2);
  c1.add_nodes(4);
  c2.add_nodes(4);
  FailureInjector i1(c1), i2(c2);
  Rng r1(99), r2(99);
  const auto s1 = i1.schedule_poisson(r1, 0, from_seconds(100),
                                      from_seconds(10), {1, 2, 3});
  const auto s2 = i2.schedule_poisson(r2, 0, from_seconds(100),
                                      from_seconds(10), {1, 2, 3});
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].time, s2[i].time);
    EXPECT_EQ(s1[i].node, s2[i].node);
  }
}

TEST(PlacementTest, RoundRobinCycles) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_nodes(3);
  RoundRobinPlacement rr(cluster);
  EXPECT_EQ(rr.pick({}), 0);
  EXPECT_EQ(rr.pick({}), 1);
  EXPECT_EQ(rr.pick({}), 2);
  EXPECT_EQ(rr.pick({}), 0);
}

TEST(PlacementTest, RoundRobinSkipsExcludedAndDead) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_nodes(3);
  cluster.fail_node(1);
  RoundRobinPlacement rr(cluster);
  EXPECT_EQ(rr.pick({0}), 2);
  EXPECT_EQ(rr.pick({0, 2}), kNoNode);
}

TEST(PlacementTest, LeastLoadedPrefersIdle) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_nodes(3);
  LeastLoadedPlacement ll(cluster);
  ll.add_load(0);
  ll.add_load(0);
  ll.add_load(1);
  EXPECT_EQ(ll.pick({}), 2);
  ll.add_load(2);
  ll.add_load(2);
  EXPECT_EQ(ll.pick({}), 1);
}

TEST(PlacementTest, LeastLoadedHonoursExclusions) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_nodes(2);
  LeastLoadedPlacement ll(cluster);
  ll.add_load(1);
  EXPECT_EQ(ll.pick({0}), 1);
  EXPECT_EQ(ll.pick({0, 1}), kNoNode);
}

TEST(PlacementTest, RemoveLoadNeverNegative) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_nodes(1);
  LeastLoadedPlacement ll(cluster);
  ll.remove_load(0);
  EXPECT_EQ(ll.load(0), 0);
  ll.add_load(0);
  ll.remove_load(0);
  ll.remove_load(0);
  EXPECT_EQ(ll.load(0), 0);
}

}  // namespace
}  // namespace rif::cluster
