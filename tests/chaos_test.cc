// Chaos-readiness of the remote worker plane.
//
// Layer by layer: the Backoff schedule and the seeded fault scripts are
// bit-reproducible; each WireFault kind observably mutates traffic at the
// frame boundary (drop / delay / duplicate / truncate / corrupt / kill /
// partition); heartbeat supervision keeps healthy idle workers alive and
// evicts hung (non-disconnected) ones; per-item deadlines re-send the work
// of a worker that hangs WITHOUT dropping its socket, with a bounded
// budget that fails over to the host pool. The final soak is the
// acceptance scenario: a seeded schedule mixing every fault family over a
// stream of jobs, all of which must complete byte-identical to the sim
// oracle or fall back — the service never aborts and never wedges.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/failure_injector.h"
#include "cluster/remote_pool.h"
#include "core/distributed/messages.h"
#include "core/parallel/parallel_pct.h"
#include "hsi/scene.h"
#include "net/backoff.h"
#include "net/fault_injection.h"
#include "net/socket_transport.h"
#include "obs/remote_telemetry.h"
#include "obs/span_tracer.h"
#include "obs/trace_check.h"
#include "runtime/metrics.h"
#include "scp/wire.h"
#include "service/remote_exec.h"
#include "service/service.h"
#include "sim/simulation.h"
#include "support/rng.h"

namespace rif {
namespace {

using cluster::RemoteWorkerPool;
using net::WireDirection;
using net::WireFault;
using net::WireFaultEvent;

// --- Backoff -----------------------------------------------------------------

TEST(BackoffTest, SameSeedSameSchedule) {
  net::BackoffConfig cfg;
  cfg.seed = 42;
  net::Backoff a(cfg);
  net::Backoff b(cfg);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.next_delay_seconds(), b.next_delay_seconds());
  }
}

TEST(BackoffTest, GrowsGeometricallyWithinJitterBounds) {
  net::BackoffConfig cfg;  // 0.05s * 2^i capped at 2.0s, +/-20% jitter
  net::Backoff backoff(cfg);
  for (int i = 0; i < 10; ++i) {
    const double base = std::min(0.05 * std::pow(2.0, i), 2.0);
    const double d = backoff.next_delay_seconds();
    EXPECT_GE(d, base * (1.0 - cfg.jitter) - 1e-12) << "attempt " << i;
    EXPECT_LE(d, base * (1.0 + cfg.jitter) + 1e-12) << "attempt " << i;
  }
  EXPECT_EQ(backoff.attempts(), 10);
}

TEST(BackoffTest, NoJitterIsExactAndResetRestarts) {
  net::BackoffConfig cfg;
  cfg.jitter = 0.0;
  net::Backoff backoff(cfg);
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.05);
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.10);
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.20);
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.05);
  // The cap binds eventually.
  for (int i = 0; i < 10; ++i) backoff.next_delay_seconds();
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 2.0);
}

// --- Seeded fault schedules --------------------------------------------------

TEST(FaultScheduleTest, PoissonWireScriptIsDeterministic) {
  const std::vector<WireFault> kinds{WireFault::kDrop, WireFault::kDelay,
                                     WireFault::kCorrupt};
  Rng a(1234);
  Rng b(1234);
  const auto s1 = net::poisson_wire_script(a, 500, 40.0, kinds, 3);
  const auto s2 = net::poisson_wire_script(b, 500, 40.0, kinds, 3);
  ASSERT_FALSE(s1.empty());
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].at_frame, s2[i].at_frame);
    EXPECT_EQ(s1[i].session_ordinal, s2[i].session_ordinal);
    EXPECT_EQ(s1[i].direction, s2[i].direction);
    EXPECT_EQ(s1[i].fault, s2[i].fault);
    EXPECT_EQ(s1[i].arg, s2[i].arg);
  }
  for (const WireFaultEvent& e : s1) {
    // Gaps are floored at one frame, so frame 0 — the handshake — is never
    // faulted and the script stays inside the horizon.
    EXPECT_GE(e.at_frame, 1u);
    EXPECT_LT(e.at_frame, 500u);
    EXPECT_GE(e.session_ordinal, 0);
    EXPECT_LT(e.session_ordinal, 3);
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), e.fault), kinds.end());
  }
}

TEST(FaultScheduleTest, SimPoissonScheduleIsDeterministic) {
  const std::vector<cluster::NodeId> victims{1, 2, 3};
  const auto schedule = [&](std::uint64_t seed) {
    sim::Simulation sim;
    cluster::Cluster cluster(sim);
    cluster.add_nodes(4, {});
    cluster::FailureInjector injector(cluster);
    Rng rng(seed);
    return injector.schedule_poisson(rng, 0, from_seconds(100.0),
                                     from_seconds(5.0), victims);
  };
  const auto s1 = schedule(9);
  const auto s2 = schedule(9);
  const auto s3 = schedule(10);
  ASSERT_FALSE(s1.empty());
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].time, s2[i].time);
    EXPECT_EQ(s1[i].node, s2[i].node);
  }
  // A different seed is a different attack (overwhelmingly likely).
  bool differs = s1.size() != s3.size();
  for (std::size_t i = 0; !differs && i < s1.size(); ++i) {
    differs = s1[i].time != s3[i].time || s1[i].node != s3[i].node;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultScheduleTest, SimFailureScriptMapsOntoWireKills) {
  // Shared attack vocabulary: the same script drives the virtual cluster
  // (FailureInjector) and the socket plane (wire kills). Host nodes below
  // `first_node` have no session and are skipped.
  const std::vector<cluster::FailureEvent> script{
      {/*time=*/from_seconds(0.5), /*node=*/0, /*repair_after=*/-1},
      {from_seconds(2.0), 3, -1},
      {from_seconds(0.0), 1, -1},
  };
  const auto wire =
      net::wire_script_from_failures(script, /*first_node=*/1,
                                     /*frames_per_second=*/10.0);
  ASSERT_EQ(wire.size(), 2u);  // node 0 is the host: not on the wire plane
  EXPECT_EQ(wire[0].session_ordinal, 2);
  EXPECT_EQ(wire[0].at_frame, 20u);
  EXPECT_EQ(wire[1].session_ordinal, 0);
  EXPECT_EQ(wire[1].at_frame, 0u);
  for (const WireFaultEvent& e : wire) {
    EXPECT_EQ(e.fault, WireFault::kKill);
    EXPECT_EQ(e.direction, WireDirection::kInbound);
  }
}

// --- Wire fault semantics at the frame boundary ------------------------------

scp::WireEnvelope app_frame(std::uint64_t marker) {
  scp::WireEnvelope env;
  env.kind = scp::FrameKind::kApp;
  env.seq = marker;
  env.msg_type = core::kRequestWork;
  return env;
}

/// Pool with one scripted-fault session whose far end we drive by hand.
struct FaultRig {
  RemoteWorkerPool pool;
  runtime::MetricsRegistry metrics;
  net::SocketClient client;

  explicit FaultRig(net::WireFaultPlan plan) {
    pool.install_faults(std::move(plan));
    pool.bind_metrics(metrics);
    pool.start(/*first_node_id=*/100);
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    pool.adopt_fd(sv[0]);
    client.adopt(sv[1]);
    scp::WireEnvelope hello;  // inbound frame 0; outbound frame 0 = welcome
    hello.kind = scp::FrameKind::kHello;
    hello.payload = scp::HelloBody{}.encode();
    EXPECT_TRUE(client.send_frame(hello.encode()));
    EXPECT_EQ(pool.wait_for_workers(1, 10.0), 1);
  }

  ~FaultRig() {
    client.close();
    pool.stop();
  }

  void send_app(std::uint64_t marker) {
    ASSERT_TRUE(client.send_frame(app_frame(marker).encode()));
  }

  /// Next kFrame event's marker, or -1 on timeout / disconnect.
  std::int64_t next_marker(double timeout = 5.0) {
    const auto ev = pool.poll_event(timeout);
    if (!ev || ev->kind != RemoteWorkerPool::Event::Kind::kFrame) return -1;
    return static_cast<std::int64_t>(ev->env.seq);
  }

  bool saw_close(double timeout = 5.0) {
    const auto ev = pool.poll_event(timeout);
    return ev && ev->kind == RemoteWorkerPool::Event::Kind::kClosed;
  }
};

TEST(WireFaultTest, DropSwallowsExactlyTheScriptedFrame) {
  FaultRig rig({{{/*at_frame=*/1, /*ordinal=*/0, WireDirection::kInbound,
                  WireFault::kDrop, 0}}});
  rig.send_app(1);  // inbound frame 1: dropped
  rig.send_app(2);  // inbound frame 2: delivered
  EXPECT_EQ(rig.next_marker(), 2);
  EXPECT_EQ(rig.metrics.counter_value("remote.faults.drop"), 1u);
  EXPECT_EQ(rig.metrics.counter_value("remote.faults.total"), 1u);
}

TEST(WireFaultTest, DuplicateDeliversTheFrameTwice) {
  FaultRig rig({{{1, 0, WireDirection::kInbound, WireFault::kDuplicate, 0}}});
  rig.send_app(1);
  rig.send_app(2);
  EXPECT_EQ(rig.next_marker(), 1);
  EXPECT_EQ(rig.next_marker(), 1);
  EXPECT_EQ(rig.next_marker(), 2);
}

TEST(WireFaultTest, DelayHoldsUntilLaterFramesFlushIt) {
  // Frame 1 held behind 2 more lane crossings: delivery order is 2, 3, 1 —
  // later traffic (re-sends, heartbeats) is the clock that flushes a
  // delayed frame.
  FaultRig rig({{{1, 0, WireDirection::kInbound, WireFault::kDelay,
                  /*arg=*/2}}});
  rig.send_app(1);
  rig.send_app(2);
  rig.send_app(3);
  EXPECT_EQ(rig.next_marker(), 2);
  EXPECT_EQ(rig.next_marker(), 3);
  EXPECT_EQ(rig.next_marker(), 1);
}

TEST(WireFaultTest, OutboundDropLosesThePoolsFrame) {
  FaultRig rig({{{1, 0, WireDirection::kOutbound, WireFault::kDrop, 0}}});
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(rig.client.read_frame(frame));  // outbound frame 0: welcome
  EXPECT_EQ(scp::WireEnvelope::decode(frame).kind, scp::FrameKind::kWelcome);
  EXPECT_TRUE(rig.pool.send(0, app_frame(1)));  // frame 1: dropped
  EXPECT_TRUE(rig.pool.send(0, app_frame(2)));  // frame 2: delivered
  ASSERT_TRUE(rig.client.read_frame(frame));
  EXPECT_EQ(scp::WireEnvelope::decode(frame).seq, 2u);
}

TEST(WireFaultTest, TruncatedFrameIsMalformedAndClosesSession) {
  // Truncation keeps the framing valid but guts the envelope: the pool must
  // treat it as a hostile/broken peer and close the session, never abort.
  FaultRig rig({{{1, 0, WireDirection::kInbound, WireFault::kTruncate,
                  /*arg=*/3}}});
  rig.send_app(1);
  EXPECT_TRUE(rig.saw_close());
  EXPECT_EQ(rig.pool.disconnects(), 1);
  EXPECT_EQ(rig.metrics.counter_value("remote.malformed"), 1u);
  EXPECT_EQ(rig.metrics.counter_value("remote.faults.truncate"), 1u);
}

TEST(WireFaultTest, CorruptedFrameFailsTheChecksumAndClosesSession) {
  // A single flipped byte anywhere in the envelope breaks the FNV-1a
  // trailer, so corruption surfaces as a malformed frame — never as
  // garbage floats inside a merge.
  FaultRig rig({{{1, 0, WireDirection::kInbound, WireFault::kCorrupt,
                  /*arg=*/1}}});
  rig.send_app(1);
  EXPECT_TRUE(rig.saw_close());
  EXPECT_EQ(rig.metrics.counter_value("remote.malformed"), 1u);
  EXPECT_EQ(rig.metrics.counter_value("remote.faults.corrupt"), 1u);
}

TEST(WireFaultTest, KillClosesTheSessionImmediately) {
  FaultRig rig({{{1, 0, WireDirection::kInbound, WireFault::kKill, 0}}});
  rig.send_app(1);
  EXPECT_TRUE(rig.saw_close());
  EXPECT_EQ(rig.pool.disconnects(), 1);
  EXPECT_FALSE(rig.pool.alive(0));
  EXPECT_EQ(rig.pool.evictions(), 0);  // a crash is not an eviction
}

// --- Heartbeat supervision ---------------------------------------------------

TEST(SupervisionTest, HealthyIdleWorkerSurvivesOnHeartbeats) {
  RemoteWorkerPool pool;
  pool.configure_supervision({/*heartbeat=*/0.05, /*hung=*/0.25});
  pool.start(100);
  pool.spawn_local_worker();
  ASSERT_EQ(pool.wait_for_workers(1, 10.0), 1);

  // Idle for several hung-timeouts: pings keep refreshing the worker's
  // last-activity stamp, so it is never evicted.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_TRUE(pool.alive(0));
  EXPECT_EQ(pool.evictions(), 0);
  EXPECT_GT(pool.pings_sent(), 0u);
  EXPECT_GT(pool.pongs_received(), 0u);
  pool.stop();
}

TEST(SupervisionTest, PartitionedWorkerIsEvictedAsHung) {
  // One-way partition: the worker still hears us (and keeps answering
  // pings into the void) but nothing it says arrives — a hang, not a
  // crash, since its socket never closes. Supervision must evict it
  // through the same on_closed path a crash takes.
  RemoteWorkerPool pool;
  runtime::MetricsRegistry metrics;
  pool.install_faults({{{/*at_frame=*/1, /*ordinal=*/0,
                         WireDirection::kInbound, WireFault::kPartitionIn,
                         0}}});
  pool.bind_metrics(metrics);
  pool.configure_supervision({/*heartbeat=*/0.05, /*hung=*/0.3});
  pool.start(100);
  pool.spawn_local_worker();
  ASSERT_EQ(pool.wait_for_workers(1, 10.0), 1);

  const auto ev = pool.poll_event(10.0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, RemoteWorkerPool::Event::Kind::kClosed);
  EXPECT_EQ(ev->worker, 0);
  EXPECT_EQ(pool.evictions(), 1);
  EXPECT_EQ(pool.disconnects(), 1);  // evictions are a subset of disconnects
  EXPECT_FALSE(pool.alive(0));
  EXPECT_FALSE(pool.node_alive(100));
  EXPECT_EQ(metrics.counter_value("remote.evictions"), 1u);
  EXPECT_GE(metrics.counter_value("remote.faults.partition_in"), 1u);
  pool.stop();
}

// --- Per-item deadlines ------------------------------------------------------

hsi::Scene chaos_scene(int size = 24, int bands = 8, std::uint64_t seed = 91) {
  hsi::SceneConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.bands = bands;
  cfg.seed = seed;
  return hsi::generate_scene(cfg);
}

/// A worker that completes the handshake and asks for work, then never
/// answers anything — the pathological hang the old cumulative-silence
/// clock could not isolate: its socket stays open and other workers'
/// chatter used to keep resetting the one global timer.
void hung_worker(int fd) {
  net::SocketClient client;
  client.adopt(fd);
  scp::WireEnvelope hello;
  hello.kind = scp::FrameKind::kHello;
  hello.payload = scp::HelloBody{}.encode();
  if (!client.send_frame(hello.encode())) return;
  std::vector<std::uint8_t> frame;
  while (client.read_frame(frame)) {
    const auto env = scp::WireEnvelope::try_decode(frame);
    if (!env) break;
    if (env->kind == scp::FrameKind::kGoodbye) break;
    if (env->kind == scp::FrameKind::kJobStart) {
      // The job tag lives in the body, not the control frame's seq.
      const auto job = scp::JobStartBody::try_decode(env->payload);
      if (!job) continue;
      scp::WireEnvelope req;
      req.kind = scp::FrameKind::kApp;
      req.seq = static_cast<std::uint64_t>(job->job_id);
      req.msg_type = core::kRequestWork;
      if (!client.send_frame(req.encode())) break;
    }
    // Everything else — tile assigns, cov shards, pings — is read and
    // ignored: the worker is alive on the wire and dead in spirit.
  }
  client.close();
}

TEST(DeadlineTest, HungWorkersItemsAreResentAndJobStaysBitExact) {
  const auto scene = chaos_scene(32, 16, 77);
  const int total_tiles = 6;

  RemoteWorkerPool pool;
  pool.start(100);
  pool.spawn_local_worker();
  pool.spawn_local_worker();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  pool.adopt_fd(sv[0]);
  std::thread hung([fd = sv[1]] { hung_worker(fd); });
  ASSERT_EQ(pool.wait_for_workers(3, 10.0), 3);

  runtime::MetricsRegistry metrics;
  service::RemoteExecParams params;
  params.cube = &scene.cube;
  params.total_tiles = total_tiles;
  params.job_id = 11;
  params.shard_deadline_seconds = 0.25;
  params.resend_limit = 5;
  params.deadline_seconds = 30.0;
  params.metrics = &metrics;
  const service::RemoteExecResult real =
      service::execute_remote_job(pool, {0, 1, 2}, params);
  pool.stop();  // unblocks the hung worker's read loop
  hung.join();

  ASSERT_TRUE(real.completed);
  // The hang never dropped the socket: recovery came from per-item
  // deadlines, not the disconnect path.
  EXPECT_EQ(real.worker_disconnects, 0);
  EXPECT_GE(real.tiles_resent + real.shards_resent, 1);
  EXPECT_GE(metrics.counter_value("remote.tile_resends") +
                metrics.counter_value("remote.shard_resends"),
            1u);
  EXPECT_EQ(real.deadline_giveups, 0);

  // A re-sent item computed by a different worker lands in the same
  // index-keyed slot: the composite is still the oracle's exact bytes.
  core::ParallelPctConfig pcfg;
  pcfg.threads = 3;
  pcfg.tiles = total_tiles;
  const core::PctResult ref = core::fuse_parallel(scene.cube, pcfg);
  EXPECT_EQ(real.composite.data, ref.composite.data);
  EXPECT_EQ(real.unique_set_size, ref.unique_set_size);
}

TEST(DeadlineTest, ExhaustedResendBudgetFailsOverInsteadOfWedging) {
  const auto scene = chaos_scene(16, 8, 5);

  RemoteWorkerPool pool;
  pool.start(100);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  pool.adopt_fd(sv[0]);
  std::thread hung([fd = sv[1]] { hung_worker(fd); });
  ASSERT_EQ(pool.wait_for_workers(1, 10.0), 1);

  runtime::MetricsRegistry metrics;
  service::RemoteExecParams params;
  params.cube = &scene.cube;
  params.total_tiles = 4;
  params.job_id = 12;
  params.shard_deadline_seconds = 0.1;
  params.resend_limit = 2;
  params.deadline_seconds = 30.0;  // budget, not the wall clock, must fire
  params.metrics = &metrics;
  const auto started = std::chrono::steady_clock::now();
  const service::RemoteExecResult real =
      service::execute_remote_job(pool, {0}, params);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  pool.stop();
  hung.join();

  EXPECT_FALSE(real.completed);  // caller falls back to the host engine
  EXPECT_GE(real.deadline_giveups, 1);
  EXPECT_GE(metrics.counter_value("remote.deadline_giveups"), 1u);
  EXPECT_LT(elapsed, 20.0);  // gave up on the budget, not the 30s wall
}

// --- Acceptance: the seeded chaos soak ---------------------------------------

TEST(ChaosSoakTest, EveryJobCompletesBitExactOrFallsBackUnderFaults) {
  const auto scene = chaos_scene();
  constexpr int kJobs = 24;

  service::ServiceConfig cfg;
  cfg.worker_nodes = 1;  // host capacity exists, so 3-worker jobs must
  cfg.execution_threads = 2;  // lease remote nodes to run at all
  cfg.remote_workers = 5;
  cfg.remote_spawn_local = true;
  cfg.remote_heartbeat_seconds = 0.05;
  cfg.remote_hung_timeout_seconds = 0.5;
  cfg.remote_shard_deadline_seconds = 0.5;
  cfg.remote_resend_limit = 4;
  cfg.remote_resend_backoff = 1.5;
  cfg.remote_job_deadline_seconds = 15.0;

  // The attack: one worker hangs (one-way partition -> heartbeat eviction),
  // one gets a corrupted frame (checksum -> malformed -> disconnect), one
  // is killed outright; seeded Poisson noise sprays drops, delays and
  // duplicates over every session. Capacity loss is permanent, but losing
  // three of five workers still leaves jobs a live worker plus the host
  // fallback, so nothing may wedge.
  net::WireFaultPlan plan;
  plan.seed = 2026;
  plan.script.push_back(
      {/*at_frame=*/2, /*ordinal=*/0, WireDirection::kInbound,
       WireFault::kPartitionIn, 0});
  plan.script.push_back({25, 1, WireDirection::kInbound, WireFault::kCorrupt,
                         /*arg=*/3});
  plan.script.push_back({35, 2, WireDirection::kInbound, WireFault::kKill,
                         0});
  Rng noise_rng(7);
  const auto noise = net::poisson_wire_script(
      noise_rng, /*frame_horizon=*/2000, /*mean_interarrival_frames=*/60.0,
      {WireFault::kDrop, WireFault::kDelay, WireFault::kDuplicate},
      /*sessions=*/5);
  plan.script.insert(plan.script.end(), noise.begin(), noise.end());
  cfg.remote_faults = std::move(plan);

  service::FusionService service(cfg);
  std::vector<service::JobId> ids;
  for (int i = 0; i < kJobs; ++i) {
    service::JobRequest r;
    r.tenant = "chaos";
    r.config.mode = core::ExecutionMode::kFull;
    r.config.workers = 3;
    r.config.tiles_per_worker = 2;
    r.config.shape = {scene.cube.width(), scene.cube.height(),
                      scene.cube.bands()};
    r.config.cube = &scene.cube;
    const auto submitted = service.submit(std::move(r));
    ASSERT_TRUE(submitted.accepted());
    ids.push_back(submitted.id);
  }

  const service::ServiceReport report = service.run();

  // Nothing aborted (we are here), nothing wedged, nothing was stranded
  // past its deadline: every job completed, remotely or via host fallback.
  ASSERT_TRUE(report.all_completed);
  EXPECT_EQ(report.remote_workers_attached, 5);
  EXPECT_EQ(static_cast<int>(report.jobs.size()), kJobs);

  // The hung worker was evicted by heartbeat supervision, and the fault
  // layer's counters made it into the service's metrics registry.
  EXPECT_GE(report.remote_evictions, 1);
  EXPECT_GE(report.remote_disconnects, 1);
  EXPECT_NE(report.metrics_json.find("remote.faults.total"),
            std::string::npos);

  // Chaos may push individual jobs onto the host pool — a job whose leased
  // remote workers all died never even starts a remote attempt, and one
  // that starts and fails counts as a fallback — but the remote plane as a
  // whole must keep executing jobs.
  EXPECT_GE(report.remote_jobs, 5);
  EXPECT_LE(report.remote_jobs + report.remote_fallbacks, kJobs);

  // Byte-identity under fire: whatever mix of drops, delays, duplicates,
  // re-sends and requeues a remote job survived, its composite is the
  // exact bytes of the sim-oracle chain (fuse_parallel at the same
  // shard/tile counts). Oracles are cached per live-shard count — workers
  // die as the soak progresses, so later jobs run with fewer shards.
  std::map<int, core::PctResult> oracle;
  int verified = 0;
  for (const service::JobId id : ids) {
    const service::JobRecord& rec =
        report.jobs[static_cast<std::size_t>(id)];
    ASSERT_TRUE(rec.completed) << "job " << id;
    if (!rec.remote_executed) continue;
    ASSERT_GE(rec.remote_workers, 1);
    auto it = oracle.find(rec.remote_workers);
    if (it == oracle.end()) {
      core::ParallelPctConfig pcfg;
      pcfg.threads = rec.remote_workers;  // fixes the shard count
      pcfg.tiles = rec.workers * 2;       // tiles_per_worker = 2
      it = oracle.emplace(rec.remote_workers,
                          core::fuse_parallel(scene.cube, pcfg))
               .first;
    }
    EXPECT_EQ(rec.outcome.composite.data, it->second.composite.data)
        << "job " << id << " with " << rec.remote_workers << " shards";
    EXPECT_EQ(rec.outcome.unique_set_size, it->second.unique_set_size);
    ++verified;
  }
  EXPECT_GE(verified, 5);

  // CI uploads this snapshot as the soak's artifact.
  std::ofstream out("METRICS_chaos.json");
  out << report.metrics_json << "\n";
}

TEST(ChaosSoakTest, TelemetryDegradesToMissingLanesNeverGarbles) {
  // The telemetry plane rides the same faulted sockets as the work: frames
  // carrying span batches get dropped, delayed, duplicated, corrupted and
  // killed along with everything else. The contract under fire is strictly
  // "degrade, don't garble": the service must complete its jobs (remotely
  // or by fallback), the unified trace must still VALIDATE — lost batches
  // read as missing lanes, never as unbalanced or misnested events — and
  // ingest-side rejections are counted, not fatal.
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  tracer.set_enabled(true);

  const auto scene = chaos_scene();
  constexpr int kJobs = 8;

  service::ServiceConfig cfg;
  cfg.worker_nodes = 1;
  cfg.execution_threads = 2;
  cfg.remote_workers = 3;
  cfg.remote_spawn_local = true;
  cfg.remote_heartbeat_seconds = 0.05;
  cfg.remote_hung_timeout_seconds = 0.5;
  cfg.remote_shard_deadline_seconds = 0.5;
  cfg.remote_resend_limit = 4;
  cfg.remote_job_deadline_seconds = 15.0;
  cfg.scrape_period_seconds = 0.05;

  net::WireFaultPlan plan;
  plan.seed = 4242;
  // A corrupted inbound frame (could be a telemetry batch — the checksum
  // rejects it either way) and one outright kill, plus seeded noise.
  plan.script.push_back({20, 1, WireDirection::kInbound, WireFault::kCorrupt,
                         /*arg=*/2});
  plan.script.push_back({30, 2, WireDirection::kInbound, WireFault::kKill,
                         0});
  Rng noise_rng(13);
  const auto noise = net::poisson_wire_script(
      noise_rng, /*frame_horizon=*/1500, /*mean_interarrival_frames=*/50.0,
      {WireFault::kDrop, WireFault::kDelay, WireFault::kDuplicate},
      /*sessions=*/3);
  plan.script.insert(plan.script.end(), noise.begin(), noise.end());
  cfg.remote_faults = std::move(plan);

  service::FusionService service(cfg);
  for (int i = 0; i < kJobs; ++i) {
    service::JobRequest r;
    r.tenant = "chaos";
    r.config.mode = core::ExecutionMode::kFull;
    r.config.workers = 3;
    r.config.tiles_per_worker = 2;
    r.config.shape = {scene.cube.width(), scene.cube.height(),
                      scene.cube.bands()};
    r.config.cube = &scene.cube;
    ASSERT_TRUE(service.submit(std::move(r)).accepted());
  }
  const service::ServiceReport report = service.run();
  tracer.set_enabled(false);

  // Nothing crashed and nothing wedged.
  ASSERT_TRUE(report.all_completed);

  // The unified trace is still schema-valid: dropped or rejected batches
  // may thin the worker lanes but can never unbalance or garble the trace.
  const obs::RemoteTelemetryCollector* telemetry = service.remote_telemetry();
  ASSERT_NE(telemetry, nullptr);
  const std::string trace_path = "TRACE_chaos_telemetry.json";
  ASSERT_TRUE(obs::write_unified_trace(trace_path, tracer, *telemetry));
  const obs::TraceCheckResult tc = obs::check_chrome_trace_file(trace_path);
  EXPECT_TRUE(tc.ok) << tc.error;
  EXPECT_GE(tc.pids, 1u);  // the coordinator lane survives anything

  // Jobs that DID complete remotely carried live workers to the end; at
  // least one of their lanes must have landed (the service barriers on the
  // job-end flush). Jobs that fell back may have none — that is the
  // "missing lane" degradation, not an error.
  if (report.remote_jobs > 0) {
    int jobs_with_lanes = 0;
    for (const service::JobRecord& rec : report.jobs) {
      if (!rec.remote_executed) continue;
      if (!telemetry->nodes_with_job(rec.id).empty()) ++jobs_with_lanes;
    }
    EXPECT_GE(jobs_with_lanes, 1);
  }

  // Ingest health is observable, and the report carries it.
  EXPECT_EQ(report.remote_telemetry_batches, telemetry->batches());
  EXPECT_EQ(report.remote_telemetry_rejected, telemetry->rejected());

  std::remove(trace_path.c_str());
  tracer.clear();
}

}  // namespace
}  // namespace rif
