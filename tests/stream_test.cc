// Tests of the streaming fusion subsystem: BoundedQueue semantics
// (backpressure, shutdown, pool-interaction regression), ChunkedCubeReader
// windowed reads for all three interleaves, and the StreamingFusionEngine
// contract — equivalence with fuse_parallel_fused at matching tile
// boundaries, bounded buffer footprint, and deadlock-freedom on a 1-thread
// help-while-waiting pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/parallel/parallel_pct.h"
#include "core/parallel/thread_pool.h"
#include "hsi/chunked_reader.h"
#include "hsi/cube_io.h"
#include "hsi/scene.h"
#include "runtime/autotuner.h"
#include "runtime/metrics.h"
#include "stream/bounded_queue.h"
#include "stream/streaming_engine.h"

namespace rif {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Save a scene cube to a temp file and return the data path.
std::string save_scene(const hsi::Scene& scene, const std::string& name,
                       hsi::Interleave il = hsi::Interleave::kBip) {
  const std::string path = temp_path(name);
  EXPECT_TRUE(hsi::save_cube(path, scene.cube, il, scene.wavelengths));
  return path;
}

void remove_cube(const std::string& path) {
  fs::remove(path);
  fs::remove(path + ".hdr");
}

hsi::Scene small_scene(int w = 64, int h = 60, int bands = 20) {
  hsi::SceneConfig config;
  config.width = w;
  config.height = h;
  config.bands = bands;
  return hsi::generate_scene(config);
}

// --- BoundedQueue ------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrderAndSizes) {
  stream::BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPop) {
  stream::BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // must block: queue is at capacity
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());  // backpressure held the producer
  EXPECT_EQ(q.size(), 2u);            // capacity never exceeded

  EXPECT_EQ(q.pop(), 1);  // makes room
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_GT(q.push_stall_seconds(), 0.0);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueueTest, CloseWakesAllBlockedConsumers) {
  stream::BoundedQueue<int> q(2);
  constexpr int kConsumers = 4;
  std::atomic<int> done{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      EXPECT_EQ(q.pop(), std::nullopt);  // empty + closed = end of stream
      ++done;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(done.load(), 0);  // all parked on the empty queue
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(done.load(), kConsumers);
}

TEST(BoundedQueueTest, CloseReleasesBlockedProducerAndDropsItem) {
  stream::BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(7));
  std::thread producer([&] {
    EXPECT_FALSE(q.push(8));  // blocked on full, then closed: item dropped
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_EQ(q.pop(), 7);               // queued items still drain
  EXPECT_EQ(q.pop(), std::nullopt);    // then end-of-stream
  EXPECT_FALSE(q.push(9));             // pushes keep failing after close
}

// The pattern the streaming engine relies on: the producer owns a
// dedicated thread while consumers borrow pool threads that park (without
// helping) in pop(). Even a 1-thread pool must make progress — the PR 2
// nested-parallelism guarantee extended to queue-coupled stages.
TEST(BoundedQueueTest, DedicatedProducerPoolConsumerNoDeadlock) {
  core::ThreadPool pool(1);
  stream::BoundedQueue<int> q(2);
  constexpr int kItems = 100;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      if (!q.push(i)) return;
    }
    q.close();
  });
  std::atomic<long> sum{0};
  pool.parallel_tasks(2, [&](int) {
    while (const auto v = q.pop()) sum += *v;
  });
  producer.join();
  EXPECT_EQ(sum.load(), static_cast<long>(kItems) * (kItems - 1) / 2);
}

// --- ChunkedCubeReader -------------------------------------------------------

class ChunkedReaderInterleaveTest
    : public ::testing::TestWithParam<hsi::Interleave> {};

TEST_P(ChunkedReaderInterleaveTest, WindowedReadsMatchCube) {
  const auto scene = small_scene(17, 13, 5);
  const std::string path =
      save_scene(scene, std::string("rif_stream_reader_") +
                            hsi::interleave_name(GetParam()) + ".dat",
                 GetParam());
  auto reader = hsi::ChunkedCubeReader::open(path);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->samples(), 17);
  EXPECT_EQ(reader->lines(), 13);
  EXPECT_EQ(reader->bands(), 5);

  // Windows of several sizes, in arbitrary order, match the in-memory BIP
  // cube exactly — including re-reads of earlier lines (pass 2 rewinds).
  const std::vector<float>& raw = scene.cube.raw();
  const std::size_t line_floats = 17 * 5;
  std::vector<float> chunk;
  for (const auto& [line0, rows] : std::vector<std::pair<int, int>>{
           {0, 4}, {4, 4}, {8, 5}, {2, 7}, {0, 13}, {12, 1}, {0, 4}}) {
    ASSERT_TRUE(reader->read_lines(line0, rows, chunk));
    ASSERT_EQ(chunk.size(), line_floats * rows);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      ASSERT_EQ(chunk[i], raw[line0 * line_floats + i])
          << "line0=" << line0 << " rows=" << rows << " i=" << i;
    }
  }
  remove_cube(path);
}

INSTANTIATE_TEST_SUITE_P(Interleaves, ChunkedReaderInterleaveTest,
                         ::testing::Values(hsi::Interleave::kBip,
                                           hsi::Interleave::kBil,
                                           hsi::Interleave::kBsq));

TEST(ChunkedReaderTest, RejectsSizeMismatchLikeLoadCube) {
  const auto scene = small_scene(8, 6, 3);
  const std::string path = save_scene(scene, "rif_stream_badsize.dat");

  // Truncated: both loaders refuse through the one validation path.
  fs::resize_file(path, 10);
  EXPECT_FALSE(hsi::ChunkedCubeReader::open(path).has_value());
  EXPECT_FALSE(hsi::load_cube(path).has_value());

  // Oversized: also refused (a silent extra tail means interleave or dims
  // are wrong — reading "successfully" would fuse garbage).
  fs::resize_file(path, hsi::expected_data_bytes(
                            {8, 6, 3, hsi::Interleave::kBip, {}}) +
                            4);
  EXPECT_FALSE(hsi::ChunkedCubeReader::open(path).has_value());
  EXPECT_FALSE(hsi::load_cube(path).has_value());
  remove_cube(path);
}

TEST(ChunkedReaderTest, TruncationMidStreamFailsTheReadNotTheProcess) {
  // A cube that passes open()'s size validation can still shrink while a
  // job streams it (log rotation, a flaky mount, an overwrite). The reader
  // must fail THAT read — the engine fails the job — never abort: this is
  // runtime input, not a programming error.
  // (Large enough that the lost tail is beyond any stdio read-ahead
  // buffer, so the truncation is really observed by the next read.)
  const auto scene = small_scene();  // 64 x 60 x 20 = 300 KiB on disk
  const std::string path = save_scene(scene, "rif_stream_midtrunc.dat");
  auto reader = hsi::ChunkedCubeReader::open(path);
  ASSERT_TRUE(reader.has_value());

  std::vector<float> chunk;
  ASSERT_TRUE(reader->read_lines(0, 4, chunk));  // healthy first chunk

  // The file loses its second half mid-stream.
  fs::resize_file(path, hsi::expected_data_bytes(
                            {64, 60, 20, hsi::Interleave::kBip, {}}) /
                            2);
  EXPECT_FALSE(reader->read_lines(40, 8, chunk));  // short read, clean false
  EXPECT_TRUE(reader->read_lines(0, 4, chunk));    // surviving range still ok

  // Out-of-range requests (a header that lied) fail the same soft way.
  EXPECT_FALSE(reader->read_lines(-1, 2, chunk));
  EXPECT_FALSE(reader->read_lines(0, 0, chunk));
  EXPECT_FALSE(reader->read_lines(58, 4, chunk));
  remove_cube(path);
}

// --- StreamingFusionEngine ---------------------------------------------------

/// Chunk/tile geometry chosen so streamed tile boundaries equal
/// fuse_parallel_fused's row partition: 60 rows, chunks of 15, 3 sub-tiles
/// per chunk  <=>  12 even tiles of 5 rows.
struct MatchedGeometry {
  static constexpr int kHeight = 60;
  static constexpr int kChunkLines = 15;
  static constexpr int kTilesPerChunk = 3;
  static constexpr int kTiles = 12;
};

TEST(StreamingEngineTest, MatchesFusedEngineAtMatchedTileBoundaries) {
  const auto scene = small_scene(64, MatchedGeometry::kHeight, 20);
  const std::string path = save_scene(scene, "rif_stream_equiv.dat");

  core::ParallelPctConfig fused_cfg;
  fused_cfg.threads = 4;
  fused_cfg.tiles = MatchedGeometry::kTiles;
  const core::PctResult fused = fuse_parallel_fused(scene.cube, fused_cfg);

  stream::StreamingConfig cfg;
  cfg.chunk_lines = MatchedGeometry::kChunkLines;
  cfg.tiles_per_chunk = MatchedGeometry::kTilesPerChunk;
  core::ThreadPool pool(4);
  const auto streamed = stream::fuse_streaming(path, pool, cfg);
  ASSERT_TRUE(streamed.has_value());

  // Same fold order and same kernels => identical unique set and
  // statistics; composite within the cross-engine tolerance contract.
  EXPECT_EQ(streamed->unique_set_size, fused.unique_set_size);
  EXPECT_EQ(streamed->screen_comparisons, fused.screen_comparisons);
  ASSERT_EQ(streamed->eigenvalues.size(), fused.eigenvalues.size());
  for (std::size_t i = 0; i < fused.eigenvalues.size(); ++i) {
    EXPECT_NEAR(streamed->eigenvalues[i], fused.eigenvalues[i],
                1e-9 * std::max(1.0, std::abs(fused.eigenvalues[i])));
  }
  ASSERT_EQ(streamed->composite.data.size(), fused.composite.data.size());
  for (std::size_t i = 0; i < fused.composite.data.size(); ++i) {
    ASSERT_LE(std::abs(int(streamed->composite.data[i]) -
                       int(fused.composite.data[i])),
              1)
        << "byte " << i;
  }
  remove_cube(path);
}

TEST(StreamingEngineTest, InterleaveOnDiskDoesNotChangeResult) {
  const auto scene = small_scene(32, 24, 12);
  core::ThreadPool pool(2);
  stream::StreamingConfig cfg;
  cfg.chunk_lines = 7;  // deliberately not a divisor of 24
  cfg.tiles_per_chunk = 2;

  std::optional<stream::StreamingResult> reference;
  for (const auto il : {hsi::Interleave::kBip, hsi::Interleave::kBil,
                        hsi::Interleave::kBsq}) {
    const std::string path =
        save_scene(scene, std::string("rif_stream_il_") +
                              hsi::interleave_name(il) + ".dat",
                   il);
    auto r = stream::fuse_streaming(path, pool, cfg);
    ASSERT_TRUE(r.has_value()) << hsi::interleave_name(il);
    if (!reference) {
      reference = std::move(r);
    } else {
      // Same BIP chunk contents regardless of on-disk layout => the whole
      // pipeline is bit-identical.
      EXPECT_EQ(r->composite.data, reference->composite.data)
          << hsi::interleave_name(il);
      EXPECT_EQ(r->unique_set_size, reference->unique_set_size);
    }
    remove_cube(path);
  }
}

TEST(StreamingEngineTest, BufferFootprintStaysBounded) {
  const auto scene = small_scene(48, 96, 16);
  const std::string path = save_scene(scene, "rif_stream_mem.dat");
  stream::StreamingConfig cfg;
  cfg.chunk_lines = 8;
  cfg.queue_depth = 3;
  core::ThreadPool pool(2);
  const auto r = stream::fuse_streaming(path, pool, cfg);
  ASSERT_TRUE(r.has_value());

  const auto& stats = r->stats;
  EXPECT_EQ(stats.chunks, 12);
  EXPECT_EQ(stats.chunk_bytes, 8ull * 48 * 16 * sizeof(float));
  // The acceptance bound: never more than queue_depth chunk buffers live,
  // and far below the whole-cube footprint the in-memory engines need.
  EXPECT_GT(stats.peak_buffer_bytes, 0u);
  EXPECT_LE(stats.peak_buffer_bytes,
            static_cast<std::uint64_t>(cfg.queue_depth) * stats.chunk_bytes);
  EXPECT_LT(stats.peak_buffer_bytes, scene.cube.bytes() / 2);
  // Two passes over the file.
  EXPECT_EQ(stats.bytes_read, 2 * scene.cube.bytes());
  EXPECT_GT(stats.read_seconds, 0.0);
  EXPECT_GT(stats.screen_seconds, 0.0);
  EXPECT_GT(stats.transform_seconds, 0.0);
  remove_cube(path);
}

// The PR 2 regression pattern extended to the streaming pipeline: ALL
// compute nested on a 1-thread help-while-waiting pool, reader on its own
// thread. Any accidental pool-borrowing in the reader path would deadlock.
TEST(StreamingEngineTest, OneThreadPoolPipelineCompletes) {
  const auto scene = small_scene(24, 20, 8);
  const std::string path = save_scene(scene, "rif_stream_1thread.dat");
  stream::StreamingConfig cfg;
  cfg.chunk_lines = 6;
  core::ThreadPool pool(1);
  const auto r = stream::fuse_streaming(path, pool, cfg);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->composite.data.size(),
            static_cast<std::size_t>(scene.cube.pixel_count()) * 3);
  EXPECT_GE(r->unique_set_size, 3u);
  remove_cube(path);
}

TEST(StreamingEngineTest, PlaneSinkStreamsEveryPixelInOrder) {
  const auto scene = small_scene(16, 20, 6);
  const std::string path = save_scene(scene, "rif_stream_sink.dat");

  // Reference planes from the in-memory fused engine at the same tile
  // boundaries (5 chunks x 1 sub-tile == 5 even row tiles).
  core::ParallelPctConfig fused_cfg;
  fused_cfg.threads = 2;
  fused_cfg.tiles = 5;
  const core::PctResult fused = fuse_parallel_fused(scene.cube, fused_cfg);

  stream::StreamingConfig cfg;
  cfg.chunk_lines = 4;
  cfg.tiles_per_chunk = 1;
  std::int64_t next_flat = 0;
  std::vector<float> pc1(static_cast<std::size_t>(scene.cube.pixel_count()));
  cfg.plane_sink = [&](std::int64_t first_flat, std::int64_t count,
                       int comps, const float* planes) {
    EXPECT_EQ(first_flat, next_flat);  // ascending chunk order
    ASSERT_EQ(comps, 3);
    for (std::int64_t k = 0; k < count; ++k) {
      pc1[static_cast<std::size_t>(first_flat + k)] = planes[k * comps];
    }
    next_flat = first_flat + count;
  };
  core::ThreadPool pool(2);
  const auto r = stream::fuse_streaming(path, pool, cfg);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(next_flat, scene.cube.pixel_count());  // full coverage
  ASSERT_EQ(r->unique_set_size, fused.unique_set_size);
  for (std::size_t i = 0; i < pc1.size(); ++i) {
    ASSERT_NEAR(pc1[i], fused.component_planes[0][i],
                1e-4 * std::max(1.0f,
                                std::abs(fused.component_planes[0][i])))
        << "pixel " << i;
  }
  remove_cube(path);
}

TEST(StreamingEngineTest, MissingFileReturnsNullopt) {
  core::ThreadPool pool(1);
  EXPECT_FALSE(stream::fuse_streaming(temp_path("rif_stream_no_such.dat"),
                                      pool, {})
                   .has_value());
}

// Regression for the shared-bounds satellite: zero and absurdly huge
// chunk geometry used to be caught inconsistently (submit-time clamp vs
// engine CHECK-abort); both now fail through runtime::validate_chunk_
// geometry with a clear logged error and a nullopt, before any I/O.
TEST(StreamingEngineTest, BadChunkGeometryFailsCleanly) {
  const auto scene = small_scene(16, 12, 4);
  const std::string path = save_scene(scene, "rif_stream_geom.dat");
  core::ThreadPool pool(1);
  const auto run = [&](int chunk_lines, int queue_depth) {
    stream::StreamingConfig cfg;
    cfg.chunk_lines = chunk_lines;
    cfg.queue_depth = queue_depth;
    return stream::fuse_streaming(path, pool, cfg);
  };
  EXPECT_FALSE(run(0, 4).has_value());        // zero chunk
  EXPECT_FALSE(run(-3, 4).has_value());
  EXPECT_FALSE(run(70000, 4).has_value());    // over kMaxChunkLines
  EXPECT_FALSE(run(8, 0).has_value());        // no pipeline slots
  EXPECT_FALSE(run(8, 2).has_value());        // below the 3-buffer minimum
  EXPECT_FALSE(run(8, 1000).has_value());     // read-ahead = resident cube
  EXPECT_TRUE(run(8, 3).has_value());         // bounds are not over-eager
  remove_cube(path);
}

TEST(StreamingEngineTest, DegenerateSceneFailsTheJobNotTheProcess) {
  // A constant cube screens down to a single unique member — no basis for
  // a principal-component transform. That is a property of the INPUT, so
  // the run must return nullopt (the service fails the one job) instead of
  // tripping the old RIF_CHECK abort.
  hsi::ImageCube cube(16, 12, 4);
  for (int y = 0; y < cube.height(); ++y) {
    for (int x = 0; x < cube.width(); ++x) {
      auto px = cube.pixel(x, y);
      for (int b = 0; b < cube.bands(); ++b) {
        px[b] = 1.0f + 0.1f * static_cast<float>(b);
      }
    }
  }
  const std::string path = temp_path("rif_stream_degenerate.dat");
  ASSERT_TRUE(hsi::save_cube(path, cube));
  core::ThreadPool pool(2);
  stream::StreamingConfig cfg;
  cfg.chunk_lines = 4;
  EXPECT_FALSE(stream::fuse_streaming(path, pool, cfg).has_value());
  remove_cube(path);
}

// --- adaptive runtime integration --------------------------------------------

TEST(StreamingEngineTest, AutotunedRunConvergesWithinBoundsAndBudget) {
  const auto scene = small_scene(48, 120, 12);
  const std::string path = save_scene(scene, "rif_stream_tuned.dat");
  stream::StreamingConfig cfg;
  cfg.chunk_lines = 8;
  cfg.queue_depth = 4;
  runtime::AutotuneConfig tune;
  tune.min_chunk_lines = 4;
  tune.max_chunk_lines = 64;
  tune.epoch_chunks = 2;
  // Budget: the configured geometry's footprint — tuning may reshape the
  // chunks-vs-depth split but must never outgrow it.
  const std::uint64_t bytes_per_line = 48ull * 12 * sizeof(float);
  tune.memory_budget = 4 * 8 * bytes_per_line;
  cfg.autotune = tune;

  core::ThreadPool pool(2);
  const auto r = stream::fuse_streaming(path, pool, cfg);
  ASSERT_TRUE(r.has_value());
  // A valid fusion came out (tuned chunk boundaries match no fixed
  // tiling, so only structural properties are pinned).
  EXPECT_EQ(r->composite.data.size(),
            static_cast<std::size_t>(scene.cube.pixel_count()) * 3);
  EXPECT_GE(r->unique_set_size, 3u);
  EXPECT_EQ(r->stats.bytes_read, 2 * scene.cube.bytes());

  const runtime::AutotuneReport& tuned = r->autotune;
  EXPECT_TRUE(tuned.enabled);
  EXPECT_EQ(tuned.initial_chunk_lines, 8);
  EXPECT_FALSE(tuned.trajectory.empty());
  for (const auto& d : tuned.trajectory) {
    EXPECT_GE(d.chunk_lines, 4);
    EXPECT_LE(d.chunk_lines, 64);
    EXPECT_GE(d.queue_depth, 3);
    EXPECT_LE(static_cast<std::uint64_t>(d.queue_depth) * d.chunk_lines *
                  bytes_per_line,
              tune.memory_budget);
  }
  // The engine's own accounting respects the budget end to end.
  EXPECT_LE(r->stats.peak_buffer_bytes, tune.memory_budget);
  remove_cube(path);
}

TEST(StreamingEngineTest, RunMergesRegistryBackedSeriesIntoCallerRegistry) {
  const auto scene = small_scene(32, 30, 8);
  const std::string path = save_scene(scene, "rif_stream_metrics.dat");
  runtime::MetricsRegistry service_reg;
  stream::StreamingConfig cfg;
  cfg.chunk_lines = 10;
  cfg.metrics = &service_reg;
  cfg.metrics_prefix = "stream.";
  core::ThreadPool pool(2);
  const auto r = stream::fuse_streaming(path, pool, cfg);
  ASSERT_TRUE(r.has_value());

  // StreamingStats is a view over the same series the caller registry
  // received: the two must agree exactly.
  EXPECT_EQ(service_reg.counter_value("stream.chunks"),
            static_cast<std::uint64_t>(r->stats.chunks));
  EXPECT_EQ(service_reg.counter_value("stream.bytes_read"),
            r->stats.bytes_read);
  EXPECT_EQ(static_cast<std::uint64_t>(
                service_reg.gauge_value("stream.peak_buffer_bytes")),
            r->stats.peak_buffer_bytes);
  const runtime::Histogram* reads =
      service_reg.find_histogram("stream.chunk_read_seconds");
  ASSERT_NE(reads, nullptr);
  // Per-chunk latency histograms: one observation per chunk per pass.
  EXPECT_EQ(reads->count(), 2u * static_cast<std::uint64_t>(r->stats.chunks));
  EXPECT_NEAR(reads->sum(), r->stats.read_seconds, 1e-12);

  // A second run into the same registry aggregates instead of clobbering.
  const auto r2 = stream::fuse_streaming(path, pool, cfg);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(service_reg.counter_value("stream.bytes_read"),
            r->stats.bytes_read + r2->stats.bytes_read);
  remove_cube(path);
}

}  // namespace
}  // namespace rif
