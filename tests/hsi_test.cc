#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "hsi/image_cube.h"
#include "hsi/image_io.h"
#include "hsi/metrics.h"
#include "hsi/partition.h"
#include "hsi/scene.h"
#include "hsi/spectra.h"

namespace rif::hsi {
namespace {

// --- ImageCube ---------------------------------------------------------------

TEST(ImageCubeTest, PixelAccessIsBandInterleaved) {
  ImageCube cube(4, 3, 2);
  cube.pixel(1, 2)[0] = 7.0f;
  cube.pixel(1, 2)[1] = 9.0f;
  const std::int64_t flat = 2 * 4 + 1;
  EXPECT_EQ(cube.pixel(flat)[0], 7.0f);
  EXPECT_EQ(cube.pixel(flat)[1], 9.0f);
}

TEST(ImageCubeTest, SizesAndBytes) {
  ImageCube cube(10, 20, 5);
  EXPECT_EQ(cube.pixel_count(), 200);
  EXPECT_EQ(cube.bytes(), 200u * 5 * 4);
}

TEST(CubeShapeTest, BytesMatchCube) {
  const CubeShape s{320, 320, 105};
  EXPECT_EQ(s.pixels(), 320 * 320);
  EXPECT_EQ(s.bytes(), ImageCube(320, 320, 105).bytes());
}

// --- Partitioning -------------------------------------------------------------

TEST(PartitionTest, RowTilesCoverExactly) {
  const CubeShape shape{17, 53, 4};
  for (int count : {1, 2, 3, 7, 16, 53}) {
    const auto tiles = partition_rows(shape, count);
    int rows = 0;
    std::int64_t pixels = 0;
    int expect_y = 0;
    for (const auto& t : tiles) {
      EXPECT_EQ(t.y0, expect_y);
      EXPECT_GT(t.rows, 0);
      expect_y += t.rows;
      rows += t.rows;
      pixels += t.pixels();
    }
    EXPECT_EQ(rows, 53);
    EXPECT_EQ(pixels, shape.pixels());
  }
}

TEST(PartitionTest, TilesBalancedWithinOneRow) {
  const auto tiles = partition_rows({100, 100, 1}, 7);
  int mn = 1 << 30, mx = 0;
  for (const auto& t : tiles) {
    mn = std::min(mn, t.rows);
    mx = std::max(mx, t.rows);
  }
  EXPECT_LE(mx - mn, 1);
}

TEST(PartitionTest, MoreTilesThanRowsDropsEmpties) {
  const auto tiles = partition_rows({8, 3, 1}, 10);
  EXPECT_EQ(tiles.size(), 3u);
}

TEST(PartitionTest, RangeChunksCover) {
  const auto chunks = partition_range(100, 7);
  ASSERT_EQ(chunks.size(), 7u);
  std::int64_t pos = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, pos);
    pos = c.end;
  }
  EXPECT_EQ(pos, 100);
}

TEST(PartitionTest, RangeHandlesZeroAndSmall) {
  const auto zero = partition_range(0, 3);
  for (const auto& c : zero) EXPECT_EQ(c.size(), 0);
  const auto small = partition_range(2, 5);
  std::int64_t total = 0;
  for (const auto& c : small) total += c.size();
  EXPECT_EQ(total, 2);
}

// --- Spectra -------------------------------------------------------------------

TEST(SpectraTest, ReflectanceInUnitRange) {
  for (int m = 0; m < kMaterialCount; ++m) {
    for (double wl = 400; wl <= 2500; wl += 10) {
      const double r = reflectance(static_cast<Material>(m), wl);
      ASSERT_GE(r, 0.0) << material_name(static_cast<Material>(m)) << " " << wl;
      ASSERT_LE(r, 1.0);
    }
  }
}

TEST(SpectraTest, VegetationHasRedEdge) {
  // NIR reflectance of forest must far exceed red-band reflectance.
  const double red = reflectance(Material::kForest, 670);
  const double nir = reflectance(Material::kForest, 860);
  EXPECT_GT(nir, 3.0 * red);
}

TEST(SpectraTest, VehicleLacksRedEdge) {
  const double red = reflectance(Material::kVehicle, 670);
  const double nir = reflectance(Material::kVehicle, 860);
  EXPECT_LT(nir, 2.0 * red);
}

TEST(SpectraTest, CamouflageImitatesVegetationInVisible) {
  // In the visible band camo and forest are close...
  const double camo_green = reflectance(Material::kCamouflage, 550);
  const double veg_green = reflectance(Material::kForest, 550);
  EXPECT_LT(std::abs(camo_green - veg_green), 0.06);
  // ...but the SWIR water bands separate them.
  const double camo_swir = reflectance(Material::kCamouflage, 1450);
  const double veg_swir = reflectance(Material::kForest, 1450);
  EXPECT_GT(camo_swir - veg_swir, 0.02);
}

TEST(SpectraTest, BandGridSpansSensorRange) {
  const auto wl = band_wavelengths(210);
  ASSERT_EQ(wl.size(), 210u);
  EXPECT_DOUBLE_EQ(wl.front(), 400.0);
  EXPECT_DOUBLE_EQ(wl.back(), 2500.0);
  for (std::size_t i = 1; i < wl.size(); ++i) EXPECT_GT(wl[i], wl[i - 1]);
}

TEST(SpectraTest, SignatureSamplesGrid) {
  const auto wl = band_wavelengths(50);
  const auto sig = signature(Material::kSoil, wl);
  ASSERT_EQ(sig.size(), 50u);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_FLOAT_EQ(sig[i],
                    static_cast<float>(reflectance(Material::kSoil, wl[i])));
  }
}

// --- Scene generation -----------------------------------------------------------

SceneConfig small_scene() {
  SceneConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.bands = 24;
  cfg.seed = 99;
  return cfg;
}

TEST(SceneTest, DeterministicForSeed) {
  const Scene a = generate_scene(small_scene());
  const Scene b = generate_scene(small_scene());
  EXPECT_EQ(a.cube.raw(), b.cube.raw());
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SceneTest, DifferentSeedsDiffer) {
  SceneConfig cfg = small_scene();
  const Scene a = generate_scene(cfg);
  cfg.seed = 100;
  const Scene b = generate_scene(cfg);
  EXPECT_NE(a.cube.raw(), b.cube.raw());
}

TEST(SceneTest, ContainsExpectedMaterials) {
  const Scene s = generate_scene(small_scene());
  EXPECT_GT(s.count_of(Material::kForest), 0);
  EXPECT_GT(s.count_of(Material::kGrass), 0);
  EXPECT_GT(s.count_of(Material::kVehicle), 0);
  EXPECT_GT(s.count_of(Material::kCamouflage), 0);
  // Forest dominates a foliated scene.
  EXPECT_GT(s.count_of(Material::kForest), s.cube.pixel_count() / 4);
  // Targets are rare.
  EXPECT_LT(s.count_of(Material::kVehicle) + s.count_of(Material::kCamouflage),
            s.cube.pixel_count() / 20);
}

TEST(SceneTest, CamouflagedVehicleInLowerLeft) {
  SceneConfig cfg = small_scene();
  cfg.width = 128;
  cfg.height = 128;
  const Scene s = generate_scene(cfg);
  std::int64_t in_quadrant = 0, total = 0;
  for (int y = 0; y < 128; ++y) {
    for (int x = 0; x < 128; ++x) {
      if (s.label(x, y) == Material::kCamouflage) {
        ++total;
        if (x < 64 && y >= 64) ++in_quadrant;
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_EQ(in_quadrant, total);  // all camo pixels in the lower-left
}

TEST(SceneTest, PixelsNonNegative) {
  const Scene s = generate_scene(small_scene());
  for (const float v : s.cube.raw()) ASSERT_GE(v, 0.0f);
}

TEST(SceneTest, BandNearFindsNearest) {
  const Scene s = generate_scene(small_scene());
  EXPECT_EQ(s.band_near(400.0), 0);
  EXPECT_EQ(s.band_near(2500.0), s.cube.bands() - 1);
  EXPECT_EQ(s.band_near(100000.0), s.cube.bands() - 1);
}

TEST(SceneTest, ValueNoiseBoundedAndDeterministic) {
  const auto a = value_noise(32, 32, 8, 5, 2);
  const auto b = value_noise(32, 32, 8, 5, 2);
  EXPECT_EQ(a, b);
  for (const float v : a) {
    ASSERT_GE(v, -1.0f);
    ASSERT_LE(v, 1.0f);
  }
}

// --- IO and metrics ---------------------------------------------------------------

TEST(ImageIoTest, StretchMapsPercentiles) {
  std::vector<float> plane(100);
  for (int i = 0; i < 100; ++i) plane[i] = static_cast<float>(i);
  const auto bytes = stretch_to_bytes(plane, 0.0, 1.0);
  EXPECT_EQ(bytes.front(), 0);
  EXPECT_EQ(bytes.back(), 255);
}

TEST(ImageIoTest, WritesPgmAndPpm) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto pgm = (dir / "rif_test.pgm").string();
  const auto ppm = (dir / "rif_test.ppm").string();
  std::vector<float> plane(16 * 8, 0.5f);
  plane[0] = 0.0f;
  plane[1] = 1.0f;
  EXPECT_TRUE(write_pgm(pgm, plane, 16, 8));
  RgbImage img(4, 4);
  img.at(0, 0, 0) = 255;
  EXPECT_TRUE(write_ppm(ppm, img));
  EXPECT_GT(std::filesystem::file_size(pgm), 100u);
  EXPECT_GT(std::filesystem::file_size(ppm), 40u);
  std::filesystem::remove(pgm);
  std::filesystem::remove(ppm);
}

TEST(MetricsTest, BandStatisticsOfConstantCube) {
  ImageCube cube(8, 8, 2);
  for (std::int64_t p = 0; p < cube.pixel_count(); ++p) {
    cube.pixel(p)[0] = 3.0f;
    cube.pixel(p)[1] = 5.0f;
  }
  const auto stats = band_statistics(cube);
  EXPECT_DOUBLE_EQ(stats[0].mean, 3.0);
  EXPECT_DOUBLE_EQ(stats[1].mean, 5.0);
  EXPECT_NEAR(stats[0].stddev, 0.0, 1e-9);
}

TEST(MetricsTest, ClassContrastSeparatesObviousTarget) {
  std::vector<float> plane(100, 0.0f);
  std::vector<std::uint8_t> labels(100,
                                   static_cast<std::uint8_t>(Material::kForest));
  for (int i = 0; i < 10; ++i) {
    plane[i] = 10.0f;
    labels[i] = static_cast<std::uint8_t>(Material::kVehicle);
  }
  EXPECT_GT(class_contrast(plane, labels, Material::kVehicle), 5.0);
  // And near zero when the "target" looks like everything else.
  std::vector<float> flat(100, 1.0f);
  EXPECT_EQ(class_contrast(flat, labels, Material::kVehicle), 0.0);
}

TEST(MetricsTest, ContrastZeroWhenClassEmpty) {
  std::vector<float> plane(10, 1.0f);
  std::vector<std::uint8_t> labels(10, 0);
  EXPECT_EQ(class_contrast(plane, labels, Material::kVehicle), 0.0);
}

TEST(MetricsTest, BandCorrelationBounds) {
  const Scene s = generate_scene(small_scene());
  // Adjacent bands of real-ish spectra are highly correlated (on the
  // 24-band test grid "adjacent" is ~90 nm apart, so the bar is moderate).
  const double adjacent = band_correlation(s.cube, 10, 11);
  EXPECT_GT(adjacent, 0.7);
  const double self = band_correlation(s.cube, 5, 5);
  EXPECT_NEAR(self, 1.0, 1e-9);
}

}  // namespace
}  // namespace rif::hsi
