#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/failure_injector.h"
#include "net/network.h"
#include "scp/runtime.h"
#include "sim/simulation.h"
#include "support/serialize.h"

namespace rif::scp {
namespace {

constexpr std::uint32_t kAdd = 1;      // payload: int64 value to accumulate
constexpr std::uint32_t kReport = 2;   // ask accumulator to report its sum
constexpr std::uint32_t kSum = 3;      // accumulator -> coordinator: sum
constexpr std::uint32_t kEcho = 4;     // echoed back verbatim

RuntimeConfig fast_resilient() {
  RuntimeConfig c;
  c.resilient = true;
  c.heartbeat_period = from_millis(20);
  c.failure_timeout = from_millis(80);
  c.retransmit_timeout = from_millis(60);
  c.state_request_timeout = from_millis(150);
  return c;
}

Message int_message(std::uint32_t type, std::int64_t value) {
  Writer w;
  w.put<std::int64_t>(value);
  return Message{type, std::move(w).take(), 0};
}

std::int64_t int_payload(const Message& m) {
  Reader r(m.payload);
  return r.get<std::int64_t>();
}

/// Accumulates kAdd values with a per-message compute charge; replies to
/// kReport with the current sum. Fully snapshot/restore capable.
class AccumulatorActor final : public Actor {
 public:
  explicit AccumulatorActor(double flops_per_message = 2e5)
      : flops_(flops_per_message) {}

  void on_message(ActorContext& ctx, ThreadId from,
                  const Message& msg) override {
    if (msg.type == kAdd) {
      const std::int64_t v = int_payload(msg);
      ctx.compute(flops_, [this, v] { sum_ += v; });
    } else if (msg.type == kReport) {
      ctx.send(from, int_message(kSum, sum_));
    }
  }

  std::vector<std::uint8_t> snapshot_state() const override {
    Writer w;
    w.put<std::int64_t>(sum_);
    return std::move(w).take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    Reader r(state);
    sum_ = r.get<std::int64_t>();
  }

 private:
  double flops_;
  std::int64_t sum_ = 0;
};

/// Sends a stream of kAdd values to a target, then kReport; records the
/// reported sum and shuts the runtime down.
class StreamCoordinator final : public Actor {
 public:
  StreamCoordinator(ThreadId target, int count, std::int64_t* result)
      : target_(target), count_(count), result_(result) {}

  void on_start(ActorContext& ctx) override {
    for (int i = 1; i <= count_; ++i) {
      ctx.send(target_, int_message(kAdd, i));
    }
    ctx.send(target_, int_message(kReport, 0));
  }

  void on_message(ActorContext& ctx, ThreadId /*from*/,
                  const Message& msg) override {
    if (msg.type == kSum) {
      *result_ = int_payload(msg);
      ctx.finish();
      ctx.shutdown_runtime();
    }
  }

 private:
  ThreadId target_;
  int count_;
  std::int64_t* result_;
};

/// Echoes every message back to its sender.
class EchoActor final : public Actor {
 public:
  void on_message(ActorContext& ctx, ThreadId from,
                  const Message& msg) override {
    ctx.send(from, msg);
  }
};

/// Sends `count` pings and records arrival order of echoes.
class PingActor final : public Actor {
 public:
  PingActor(ThreadId peer, int count, std::vector<std::int64_t>* order)
      : peer_(peer), count_(count), order_(order) {}

  void on_start(ActorContext& ctx) override {
    for (int i = 0; i < count_; ++i) ctx.send(peer_, int_message(kEcho, i));
  }
  void on_message(ActorContext& ctx, ThreadId /*from*/,
                  const Message& msg) override {
    order_->push_back(int_payload(msg));
    if (static_cast<int>(order_->size()) == count_) {
      ctx.finish();
      ctx.shutdown_runtime();
    }
  }

 private:
  ThreadId peer_;
  int count_;
  std::vector<std::int64_t>* order_;
};

struct Harness {
  sim::Simulation sim;
  cluster::Cluster cluster{sim};
  std::unique_ptr<net::LanNetwork> net;
  std::unique_ptr<Runtime> runtime;

  explicit Harness(int nodes, RuntimeConfig config = {}) {
    cluster::NodeConfig nc;
    nc.flops_per_second = 1e8;
    cluster.add_nodes(nodes, nc);
    net = std::make_unique<net::LanNetwork>(cluster);
    runtime = std::make_unique<Runtime>(cluster, *net, config);
  }

  /// Start the runtime and drive it until shutdown or `deadline`.
  bool go(SimTime deadline) {
    runtime->start();
    return runtime->run(deadline);
  }
};

// --- Plain message passing (non-resilient baseline) -------------------------

TEST(ScpBasicTest, StreamAccumulates) {
  Harness h(2);
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 10, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] { return std::make_unique<AccumulatorActor>(); },
                   1, {1});
  ASSERT_TRUE(h.go(from_seconds(30)));
  EXPECT_EQ(result, 55);  // 1 + ... + 10
}

TEST(ScpBasicTest, PerSenderFifoOrder) {
  Harness h(2);
  std::vector<std::int64_t> order;
  const ThreadId echo = 1;
  h.runtime->spawn("ping", [&] {
    return std::make_unique<PingActor>(echo, 20, &order);
  }, 1, {0});
  h.runtime->spawn("echo", [] { return std::make_unique<EchoActor>(); }, 1,
                   {1});
  ASSERT_TRUE(h.go(from_seconds(30)));
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ScpBasicTest, ComputeChargesVirtualTime) {
  Harness h(2);
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 5, &result);
  }, 1, {0});
  // 1e8 flops/message at 1e8 flops/s = 1 virtual second each.
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(1e8);
  }, 1, {1});
  ASSERT_TRUE(h.go(from_seconds(60)));
  EXPECT_EQ(result, 15);
  EXPECT_GT(h.sim.now(), from_seconds(5.0));
}

TEST(ScpBasicTest, NonResilientDiesWithNode) {
  Harness h(2);
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 100, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(1e7);  // 0.1 s/message
  }, 1, {1});
  cluster::FailureInjector injector(h.cluster);
  injector.schedule_crash(from_seconds(1.0), 1);
  EXPECT_FALSE(h.go(from_seconds(30)));  // never completes
  EXPECT_EQ(result, -1);
}

// --- Replication and deduplication ------------------------------------------

TEST(ScpReplicationTest, ReplicatedReceiverProcessesOnce) {
  Harness h(3, fast_resilient());
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 10, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] { return std::make_unique<AccumulatorActor>(); },
                   2, {1, 2});
  ASSERT_TRUE(h.go(from_seconds(30)));
  EXPECT_EQ(result, 55);  // replication must not double-count
  // Fan-out really happened: physical copies exceed logical sends.
  EXPECT_GT(h.runtime->stats().replica_messages,
            h.runtime->stats().app_messages);
  EXPECT_GT(h.runtime->stats().acks, 0u);
  EXPECT_GT(h.runtime->stats().heartbeats, 0u);
}

TEST(ScpReplicationTest, ReplicatedSenderDeduplicatedAtReceiver) {
  Harness h(4, fast_resilient());
  std::int64_t result = -1;
  const ThreadId acc = 1;  // spawn order: coord = 0, acc = 1
  // The coordinator itself is replicated: its stream must not double.
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 7, &result);
  }, 2, {0, 1});
  h.runtime->spawn("acc", [] { return std::make_unique<AccumulatorActor>(); },
                   1, {2});
  ASSERT_TRUE(h.go(from_seconds(30)));
  EXPECT_EQ(result, 28);
  EXPECT_GT(h.runtime->stats().duplicates_dropped, 0u);
}

TEST(ScpReplicationTest, LossyNetworkRecoveredByRetransmission) {
  Harness h(3, fast_resilient());
  h.net->set_loss_probability(0.25, 77);
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 30, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] { return std::make_unique<AccumulatorActor>(); },
                   2, {1, 2});
  ASSERT_TRUE(h.go(from_seconds(120)));
  EXPECT_EQ(result, 465);  // 1 + ... + 30, despite 25% loss
  EXPECT_GT(h.runtime->stats().retransmits, 0u);
}

// --- Failure detection and regeneration --------------------------------------

TEST(ScpResilienceTest, CrashDetectedAndRegenerated) {
  Harness h(5, fast_resilient());
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 40, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(5e6);  // 50 ms/message
  }, 2, {1, 2});

  cluster::FailureInjector injector(h.cluster);
  injector.schedule_crash(from_millis(400), 2);  // mid-stream

  ASSERT_TRUE(h.go(from_seconds(120)));
  EXPECT_EQ(result, 820);  // 1 + ... + 40 survives the crash
  EXPECT_GE(h.runtime->stats().failures_detected, 1u);
  EXPECT_EQ(h.runtime->stats().replicas_regenerated, 1u);
  EXPECT_GT(h.runtime->stats().state_transfer_bytes, 0u);

  // The regenerated replica lives on a fresh node under a new incarnation.
  const auto members = h.runtime->members_of(acc);
  ASSERT_EQ(members.size(), 2u);
  for (const auto& m : members) {
    EXPECT_TRUE(m.alive);
    EXPECT_NE(m.node, 2);  // not the crashed node
  }
  EXPECT_TRUE(members[0].incarnation == 1 || members[1].incarnation == 1);
}

TEST(ScpResilienceTest, RegeneratedReplicaPlacementAvoidsGroupNodes) {
  Harness h(4, fast_resilient());
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 30, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(5e6);
  }, 2, {1, 2});
  cluster::FailureInjector injector(h.cluster);
  injector.schedule_crash(from_millis(300), 1);
  ASSERT_TRUE(h.go(from_seconds(120)));
  EXPECT_EQ(result, 465);
  const auto members = h.runtime->members_of(acc);
  // Survivor is on node 2; the regenerated member must be on node 3 (the
  // only alive node not hosting a member; node 0 hosts coord but is legal —
  // least-loaded prefers the empty node 3).
  EXPECT_TRUE((members[0].node == 2 && members[1].node == 3) ||
              (members[0].node == 3 && members[1].node == 2));
}

TEST(ScpResilienceTest, SequentialCrashesBothSlotsRecovered) {
  Harness h(6, fast_resilient());
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 60, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(5e6);
  }, 2, {1, 2});
  cluster::FailureInjector injector(h.cluster);
  injector.schedule_crash(from_millis(400), 1);
  injector.schedule_crash(from_millis(1400), 2);  // after first recovery
  ASSERT_TRUE(h.go(from_seconds(240)));
  EXPECT_EQ(result, 1830);
  EXPECT_EQ(h.runtime->stats().replicas_regenerated, 2u);
  EXPECT_TRUE(h.runtime->all_groups_alive());
}

TEST(ScpResilienceTest, GracefulDegradationWithoutRegeneration) {
  RuntimeConfig config = fast_resilient();
  config.regenerate = false;
  Harness h(4, config);
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 40, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(5e6);
  }, 2, {1, 2});
  cluster::FailureInjector injector(h.cluster);
  injector.schedule_crash(from_millis(300), 1);
  ASSERT_TRUE(h.go(from_seconds(120)));
  EXPECT_EQ(result, 820);  // survivor alone finishes the stream
  EXPECT_EQ(h.runtime->stats().replicas_regenerated, 0u);
}

TEST(ScpResilienceTest, GroupLostWhenAllReplicasDie) {
  RuntimeConfig config = fast_resilient();
  config.regenerate = false;  // classic replication only
  Harness h(4, config);
  std::int64_t result = -1;
  ThreadId lost = kNoThread;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 100, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(5e6);
  }, 2, {1, 2});
  h.runtime->set_on_group_lost([&](ThreadId tid) { lost = tid; });
  cluster::FailureInjector injector(h.cluster);
  injector.schedule_crash(from_millis(300), 1);
  injector.schedule_crash(from_millis(350), 2);
  EXPECT_FALSE(h.go(from_seconds(60)));  // mission failure
  EXPECT_EQ(lost, acc);
  EXPECT_FALSE(h.runtime->all_groups_alive());
  EXPECT_GE(h.runtime->stats().groups_lost, 1u);
}

TEST(ScpResilienceTest, RegenerationBeatsSimultaneousDoubleCrashOnlyIfSpaced) {
  // Both replicas die within one failure-timeout window: with regeneration
  // enabled but no surviving member, the group is unrecoverable.
  Harness h(5, fast_resilient());
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 100, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(5e6);
  }, 2, {1, 2});
  cluster::FailureInjector injector(h.cluster);
  injector.schedule_crash(from_millis(300), 1);
  injector.schedule_crash(from_millis(305), 2);
  EXPECT_FALSE(h.go(from_seconds(60)));
  EXPECT_FALSE(h.runtime->all_groups_alive());
}

TEST(ScpResilienceTest, FinishedGroupNotRegenerated) {
  Harness h(3, fast_resilient());
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 5, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] { return std::make_unique<AccumulatorActor>(); },
                   2, {1, 2});
  ASSERT_TRUE(h.go(from_seconds(30)));
  EXPECT_EQ(result, 15);
  // Coordinator finished; killing its node afterwards must not regenerate.
  h.cluster.fail_node(0);
  h.sim.run_until(h.sim.now() + from_seconds(2));
  EXPECT_EQ(h.runtime->stats().replicas_regenerated, 0u);
}

TEST(ScpResilienceTest, NoFalsePositivesWithoutFailures) {
  Harness h(3, fast_resilient());
  std::int64_t result = -1;
  const ThreadId acc = 1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(acc, 50, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(2e6);
  }, 2, {1, 2});
  ASSERT_TRUE(h.go(from_seconds(120)));
  EXPECT_EQ(result, 1275);
  EXPECT_EQ(h.runtime->stats().failures_detected, 0u);
  EXPECT_EQ(h.runtime->stats().replicas_regenerated, 0u);
}

}  // namespace
}  // namespace rif::scp
