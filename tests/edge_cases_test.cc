// Edge-case and robustness tests across modules: degenerate fusion-job
// configurations, network partition healing, trace invariants.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/failure_injector.h"
#include "core/distributed/fusion_job.h"
#include "core/parallel/parallel_pct.h"
#include "hsi/scene.h"
#include "net/network.h"
#include "scp/runtime.h"
#include "sim/simulation.h"
#include "support/serialize.h"

namespace rif {
namespace {

// --- Degenerate fusion-job configurations ------------------------------------

core::FusionJobConfig small_cost_only(int workers, int tiles_per_worker) {
  core::FusionJobConfig config;
  config.mode = core::ExecutionMode::kCostOnly;
  config.shape = {64, 8, 12};  // only 8 rows
  config.workers = workers;
  config.tiles_per_worker = tiles_per_worker;
  config.deadline = from_seconds(10000);
  return config;
}

TEST(FusionEdgeTest, MoreWorkersThanRows) {
  // 12 workers want 24 tiles but only 8 rows exist: some workers never get
  // a tile, yet the job must complete.
  const auto r = run_fusion_job(small_cost_only(12, 2));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.outcome.tiles_distributed, 8);
  EXPECT_EQ(r.outcome.tiles_colored, 8);
}

TEST(FusionEdgeTest, SingleWorkerSingleTile) {
  const auto r = run_fusion_job(small_cost_only(1, 1));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.outcome.tiles_distributed, 1);
}

TEST(FusionEdgeTest, IdleWorkerWithReplicationStillCompletes) {
  auto config = small_cost_only(12, 1);
  config.resilient = true;
  config.replication = 2;
  const auto r = run_fusion_job(config);
  ASSERT_TRUE(r.completed);
}

TEST(FusionEdgeTest, FullModeTinyScene) {
  hsi::SceneConfig sc;
  sc.width = 16;
  sc.height = 6;
  sc.bands = 8;
  sc.seed = 2;
  const auto scene = hsi::generate_scene(sc);
  core::FusionJobConfig config;
  config.mode = core::ExecutionMode::kFull;
  config.cube = &scene.cube;
  config.shape = {16, 6, 8};
  config.workers = 4;
  config.tiles_per_worker = 3;  // 12 tiles wanted, 6 rows available
  config.deadline = from_seconds(10000);
  const auto r = run_fusion_job(config);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.outcome.composite.data.size(),
            static_cast<std::size_t>(16 * 6 * 3));
}

TEST(FusionEdgeTest, ManyComponentsRequested) {
  hsi::SceneConfig sc;
  sc.width = 24;
  sc.height = 24;
  sc.bands = 10;
  const auto scene = hsi::generate_scene(sc);
  core::ParallelPctConfig pcfg;
  pcfg.pct.output_components = 10;  // == bands
  const auto result = core::fuse_parallel(scene.cube, pcfg);
  EXPECT_EQ(result.component_planes.size(), 10u);
}

TEST(FusionEdgeTest, ParallelMergeProducesValidUniqueSet) {
  hsi::SceneConfig sc;
  sc.width = 48;
  sc.height = 48;
  sc.bands = 16;
  sc.seed = 12;
  const auto scene = hsi::generate_scene(sc);
  core::ParallelPctConfig pcfg;
  pcfg.threads = 4;
  pcfg.tiles = 7;  // odd count exercises the tree's unpaired carry
  pcfg.parallel_merge = true;
  const auto result = core::fuse_parallel(scene.cube, pcfg);
  EXPECT_GE(result.unique_set_size, 3u);

  // Statistics must be close to the sequential-merge run.
  pcfg.parallel_merge = false;
  const auto reference = core::fuse_parallel(scene.cube, pcfg);
  EXPECT_NEAR(result.eigenvalues[0], reference.eigenvalues[0],
              0.1 * reference.eigenvalues[0]);
  const double ratio = static_cast<double>(result.unique_set_size) /
                       static_cast<double>(reference.unique_set_size);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

// --- Partition healing ----------------------------------------------------------

constexpr std::uint32_t kAdd = 1;
constexpr std::uint32_t kReport = 2;
constexpr std::uint32_t kSum = 3;

scp::Message int_message(std::uint32_t type, std::int64_t value) {
  Writer w;
  w.put<std::int64_t>(value);
  return scp::Message{type, std::move(w).take(), 0};
}

class Accumulator final : public scp::Actor {
 public:
  explicit Accumulator(double flops_per_message = 0.0)
      : flops_(flops_per_message) {}
  void on_message(scp::ActorContext& ctx, scp::ThreadId from,
                  const scp::Message& msg) override {
    if (msg.type == kAdd) {
      Reader r(msg.payload);
      const std::int64_t v = r.get<std::int64_t>();
      if (flops_ > 0.0) {
        ctx.compute(flops_, [this, v] { sum_ += v; });
      } else {
        sum_ += v;
      }
    } else if (msg.type == kReport) {
      ctx.send(from, int_message(kSum, sum_));
    }
  }
  std::vector<std::uint8_t> snapshot_state() const override {
    Writer w;
    w.put<std::int64_t>(sum_);
    return std::move(w).take();
  }
  void restore_state(const std::vector<std::uint8_t>& s) override {
    Reader r(s);
    sum_ = r.get<std::int64_t>();
  }

 private:
  double flops_;
  std::int64_t sum_ = 0;
};

class Streamer final : public scp::Actor {
 public:
  Streamer(scp::ThreadId target, int count, std::int64_t* out)
      : target_(target), count_(count), out_(out) {}
  void on_start(scp::ActorContext& ctx) override {
    for (int i = 1; i <= count_; ++i) ctx.send(target_, int_message(kAdd, i));
    ctx.send(target_, int_message(kReport, 0));
  }
  void on_message(scp::ActorContext& ctx, scp::ThreadId /*from*/,
                  const scp::Message& msg) override {
    if (msg.type == kSum) {
      Reader r(msg.payload);
      *out_ = r.get<std::int64_t>();
      ctx.finish();
      ctx.shutdown_runtime();
    }
  }

 private:
  scp::ThreadId target_;
  int count_;
  std::int64_t* out_;
};

TEST(PartitionHealTest, MessagesRecoveredAfterPartitionHeals) {
  sim::Simulation sim;
  cluster::Cluster cluster(sim);
  cluster::NodeConfig nc;
  nc.flops_per_second = 1e8;
  cluster.add_nodes(3, nc);
  net::LanNetwork net(cluster);
  scp::RuntimeConfig rc;
  rc.resilient = true;
  rc.heartbeat_period = from_millis(20);
  rc.failure_timeout = from_millis(5000);  // partition != death here
  rc.retransmit_timeout = from_millis(60);
  scp::Runtime runtime(cluster, net, rc);

  std::int64_t result = -1;
  runtime.spawn("streamer", [&] {
    return std::make_unique<Streamer>(1, 25, &result);
  }, 1, {0});
  runtime.spawn("acc", [] { return std::make_unique<Accumulator>(); }, 2,
                {1, 2});

  // Cut node 0 <-> node 1 for a while: copies to slot 0 are lost, slot 1
  // keeps working; after healing, retransmission catches slot 0 up.
  net.set_partitioned(0, 1, true);
  sim.schedule_at(from_millis(700), [&] { net.set_partitioned(0, 1, false); });

  runtime.start();
  // The reachable replica answers immediately; the application finishes
  // long before the partition heals.
  ASSERT_TRUE(runtime.run(from_seconds(120)));
  EXPECT_EQ(result, 325);
  EXPECT_EQ(runtime.stats().failures_detected, 0u);  // nobody died

  // Keep the protocol machinery running past the heal: retransmission must
  // deliver the cut replica's entire backlog.
  sim.run_until(from_seconds(5));
  EXPECT_GT(runtime.stats().retransmits, 0u);
  EXPECT_GT(runtime.stats().duplicates_dropped + runtime.stats().acks, 25u);
}

/// Emits kAdd messages spaced by a compute delay, so traffic is in flight
/// throughout the run (needed to exercise in-flight drops on a crash).
class PacedStreamer final : public scp::Actor {
 public:
  PacedStreamer(scp::ThreadId target, int count, std::int64_t* out)
      : target_(target), count_(count), out_(out) {}
  void on_start(scp::ActorContext& ctx) override { send_next(ctx, 1); }
  void on_message(scp::ActorContext& ctx, scp::ThreadId /*from*/,
                  const scp::Message& msg) override {
    if (msg.type == kSum) {
      Reader r(msg.payload);
      *out_ = r.get<std::int64_t>();
      ctx.finish();
      ctx.shutdown_runtime();
    }
  }

 private:
  void send_next(scp::ActorContext& ctx, int i) {
    if (i > count_) {
      ctx.send(target_, int_message(kReport, 0));
      return;
    }
    ctx.send(target_, int_message(kAdd, i));
    ctx.compute(1e6, [this, &ctx, i] { send_next(ctx, i + 1); });
  }

  scp::ThreadId target_;
  int count_;
  std::int64_t* out_;
};

// --- Trace invariants -------------------------------------------------------------

TEST(TraceInvariantTest, NoDeliveryToDeadNode) {
  core::FusionJobConfig config;
  config.mode = core::ExecutionMode::kCostOnly;
  config.shape = {64, 32, 12};
  config.workers = 3;
  config.resilient = true;
  config.replication = 2;
  config.runtime.heartbeat_period = from_millis(100);
  config.runtime.failure_timeout = from_millis(400);
  config.failures = {{from_seconds(2), 2, -1}};
  config.deadline = from_seconds(50000);
  // Run manually to get at the trace.
  sim::Simulation sim;
  cluster::Cluster cluster(sim);
  cluster.trace().set_enabled(true);
  cluster.add_nodes(4, config.node);
  net::LanNetwork net(cluster, config.lan);
  scp::RuntimeConfig rc = config.runtime;
  rc.resilient = true;
  scp::Runtime runtime(cluster, net, rc);

  std::int64_t result = -1;
  runtime.spawn("streamer", [&] {
    // Paced: ~50 ms between sends, so copies are in flight when the node
    // dies at t=300 ms.
    return std::make_unique<PacedStreamer>(1, 60, &result);
  }, 1, {0});
  runtime.spawn("acc", [] { return std::make_unique<Accumulator>(); }, 2,
                {1, 2});
  cluster::FailureInjector injector(cluster);
  injector.schedule_crash(from_millis(300), 2);
  runtime.start();
  ASSERT_TRUE(runtime.run(from_seconds(120)));
  EXPECT_EQ(result, 1830);

  // Invariant: after a node's failure time, no delivery lands on it.
  SimTime failed_at = -1;
  for (const auto& rec : cluster.trace().records()) {
    if (rec.kind == sim::TraceKind::kNodeFailed && rec.a == 2) {
      failed_at = rec.time;
    }
    if (rec.kind == sim::TraceKind::kMessageDelivered && rec.b == 2 &&
        failed_at >= 0) {
      FAIL() << "delivery to dead node 2 at t=" << to_seconds(rec.time);
    }
  }
  ASSERT_GE(failed_at, 0);
  EXPECT_GT(cluster.trace().count(sim::TraceKind::kMessageDropped), 0u);
  EXPECT_EQ(cluster.trace().count(sim::TraceKind::kReplicaSpawned), 1u);
}

TEST(TraceInvariantTest, ComputeAccountingConsistent) {
  core::FusionJobConfig config;
  config.mode = core::ExecutionMode::kCostOnly;
  config.shape = {64, 64, 12};
  config.workers = 2;
  config.deadline = from_seconds(50000);
  const auto r = run_fusion_job(config);
  ASSERT_TRUE(r.completed);
  // Flops charged must at least cover the modelled screening work.
  const core::CostModel model(config.cost, 12, 3);
  double screen_total = 0.0;
  const auto tiles = hsi::partition_rows(config.shape, 4);
  for (const auto& t : tiles) screen_total += model.screen_flops(t.pixels());
  EXPECT_GE(r.total_flops_charged, screen_total);
}

}  // namespace
}  // namespace rif
