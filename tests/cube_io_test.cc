#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "hsi/cube_io.h"
#include "hsi/scene.h"

namespace rif::hsi {
namespace {

namespace fs = std::filesystem;

ImageCube make_cube() {
  ImageCube cube(5, 4, 3);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) {
      for (int b = 0; b < 3; ++b) {
        cube.pixel(x, y)[b] = static_cast<float>(100 * b + 10 * y + x);
      }
    }
  }
  return cube;
}

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

class CubeIoInterleaveTest : public ::testing::TestWithParam<Interleave> {};

TEST_P(CubeIoInterleaveTest, SaveLoadRoundTrip) {
  const ImageCube cube = make_cube();
  const std::string path = temp_path(
      std::string("rif_cube_") + interleave_name(GetParam()) + ".dat");
  ASSERT_TRUE(save_cube(path, cube, GetParam(), {400.0, 1000.0, 2500.0}));

  CubeHeader header;
  const auto loaded = load_cube(path, &header);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->width(), 5);
  EXPECT_EQ(loaded->height(), 4);
  EXPECT_EQ(loaded->bands(), 3);
  EXPECT_EQ(loaded->raw(), cube.raw());  // exact, all interleaves
  EXPECT_EQ(header.interleave, GetParam());
  ASSERT_EQ(header.wavelengths.size(), 3u);
  EXPECT_DOUBLE_EQ(header.wavelengths[1], 1000.0);

  fs::remove(path);
  fs::remove(path + ".hdr");
}

INSTANTIATE_TEST_SUITE_P(Interleaves, CubeIoInterleaveTest,
                         ::testing::Values(Interleave::kBip, Interleave::kBil,
                                           Interleave::kBsq));

TEST(CubeIoTest, InterleaveConversionsInvert) {
  const ImageCube cube = make_cube();
  for (const auto il :
       {Interleave::kBip, Interleave::kBil, Interleave::kBsq}) {
    const auto data = to_interleave(cube, il);
    const ImageCube back = from_interleave(data, 5, 4, 3, il);
    EXPECT_EQ(back.raw(), cube.raw()) << interleave_name(il);
  }
}

TEST(CubeIoTest, BsqLayoutIsPlanar) {
  const ImageCube cube = make_cube();
  const auto bsq = to_interleave(cube, Interleave::kBsq);
  // First plane (band 0) holds band-0 values of all pixels in row order.
  EXPECT_FLOAT_EQ(bsq[0], cube.pixel(0, 0)[0]);
  EXPECT_FLOAT_EQ(bsq[1], cube.pixel(1, 0)[0]);
  EXPECT_FLOAT_EQ(bsq[5 * 4], cube.pixel(0, 0)[1]);  // start of band 1
}

TEST(CubeIoTest, BilLayoutIsLineMajor) {
  const ImageCube cube = make_cube();
  const auto bil = to_interleave(cube, Interleave::kBil);
  // Line 0: band 0 samples, then band 1 samples...
  EXPECT_FLOAT_EQ(bil[0], cube.pixel(0, 0)[0]);
  EXPECT_FLOAT_EQ(bil[5], cube.pixel(0, 0)[1]);
  EXPECT_FLOAT_EQ(bil[3 * 5], cube.pixel(0, 1)[0]);  // line 1 starts
}

TEST(CubeIoTest, ParseInterleaveNames) {
  EXPECT_EQ(parse_interleave("bip"), Interleave::kBip);
  EXPECT_EQ(parse_interleave(" BIL "), Interleave::kBil);
  EXPECT_EQ(parse_interleave("BSQ"), Interleave::kBsq);
  EXPECT_FALSE(parse_interleave("bogus").has_value());
}

TEST(CubeIoTest, MissingHeaderFails) {
  EXPECT_FALSE(load_cube(temp_path("rif_no_such_cube.dat")).has_value());
}

TEST(CubeIoTest, MalformedHeaderFails) {
  const std::string path = temp_path("rif_bad_cube.dat");
  {
    std::ofstream hdr(path + ".hdr");
    hdr << "ENVI\nsamples = 4\nlines = 4\n";  // bands missing
  }
  {
    std::ofstream data(path, std::ios::binary);
    data << "xxxx";
  }
  EXPECT_FALSE(load_cube(path).has_value());
  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(CubeIoTest, CrlfHeaderWithStrayWhitespaceParses) {
  // Real-world ENVI headers are often Windows-authored: CRLF line endings,
  // a UTF-8 BOM, tabs and stray spaces around the '='. All of it must
  // parse identically to the clean Unix form.
  const std::string hdr_path = temp_path("rif_crlf.hdr");
  {
    std::ofstream hdr(hdr_path, std::ios::binary);
    hdr << "\xEF\xBB\xBF" << "ENVI\r\n"
        << "samples\t=  5\r\n"
        << "lines =4\r\n"
        << "bands= 3\r\n"
        << "data type = 4\r\n"
        << "interleave =\tBIL\r\n"
        << "wavelength = { 400.0,\r\n"
        << "  1000.0, 2500.0 }\r\n";
  }
  const auto header = read_header(hdr_path);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->samples, 5);
  EXPECT_EQ(header->lines, 4);
  EXPECT_EQ(header->bands, 3);
  EXPECT_EQ(header->interleave, Interleave::kBil);
  ASSERT_EQ(header->wavelengths.size(), 3u);
  EXPECT_DOUBLE_EQ(header->wavelengths[2], 2500.0);
  fs::remove(hdr_path);
}

TEST(CubeIoTest, CrOnlyHeaderParses) {
  // Lone-CR terminators turn the whole file into one std::getline "line";
  // the tolerant reader must still see every key.
  const std::string hdr_path = temp_path("rif_cr.hdr");
  {
    std::ofstream hdr(hdr_path, std::ios::binary);
    hdr << "ENVI\rsamples = 7\rlines = 2\rbands = 4\rdata type = 4\r"
        << "interleave = bsq\r";
  }
  const auto header = read_header(hdr_path);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->samples, 7);
  EXPECT_EQ(header->lines, 2);
  EXPECT_EQ(header->bands, 4);
  EXPECT_EQ(header->interleave, Interleave::kBsq);
  fs::remove(hdr_path);
}

TEST(CubeIoTest, CrlfCubeRoundTrips) {
  // End-to-end: a CRLF-converted header still loads the data file.
  const ImageCube cube = make_cube();
  const std::string path = temp_path("rif_crlf_cube.dat");
  ASSERT_TRUE(save_cube(path, cube));
  {
    std::ifstream in(path + ".hdr");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string crlf;
    for (const char c : text) {
      if (c == '\n') crlf += '\r';
      crlf += c;
    }
    std::ofstream out(path + ".hdr", std::ios::binary);
    out << crlf;
  }
  const auto loaded = load_cube(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->raw(), cube.raw());
  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(CubeIoTest, OversizedDataFails) {
  // An extra tail means the dims or interleave are wrong; loading it
  // "successfully" would fuse garbage. Same validation path as truncation.
  const ImageCube cube = make_cube();
  const std::string path = temp_path("rif_oversized_cube.dat");
  ASSERT_TRUE(save_cube(path, cube));
  const auto header = read_header(path + ".hdr");
  ASSERT_TRUE(header.has_value());
  EXPECT_TRUE(validate_data_size(path, *header));
  fs::resize_file(path, expected_data_bytes(*header) + sizeof(float));
  EXPECT_FALSE(validate_data_size(path, *header));
  EXPECT_FALSE(load_cube(path).has_value());
  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(CubeIoTest, TruncatedDataFails) {
  const ImageCube cube = make_cube();
  const std::string path = temp_path("rif_trunc_cube.dat");
  ASSERT_TRUE(save_cube(path, cube));
  fs::resize_file(path, 10);  // chop the data file
  EXPECT_FALSE(load_cube(path).has_value());
  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(CubeIoTest, WavelengthCountMismatchFails) {
  const std::string path = temp_path("rif_wl_cube.dat");
  const ImageCube cube = make_cube();
  ASSERT_TRUE(save_cube(path, cube, Interleave::kBip, {400.0}));  // 1 != 3
  EXPECT_FALSE(load_cube(path).has_value());
  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(CubeIoTest, SceneSurvivesDiskRoundTrip) {
  SceneConfig config;
  config.width = 24;
  config.height = 16;
  config.bands = 12;
  const Scene scene = generate_scene(config);
  const std::string path = temp_path("rif_scene_cube.dat");
  ASSERT_TRUE(
      save_cube(path, scene.cube, Interleave::kBsq, scene.wavelengths));
  CubeHeader header;
  const auto loaded = load_cube(path, &header);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->raw(), scene.cube.raw());
  EXPECT_EQ(header.wavelengths, scene.wavelengths);
  fs::remove(path);
  fs::remove(path + ".hdr");
}

}  // namespace
}  // namespace rif::hsi
