#include <gtest/gtest.h>

#include <cmath>

#include "linalg/jacobi_eig.h"
#include "linalg/matrix.h"
#include "linalg/stats.h"
#include "support/rng.h"

namespace rif::linalg {
namespace {

Matrix random_spd(int n, std::uint64_t seed) {
  // A^T A + n I is symmetric positive definite.
  Rng rng(seed);
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix spd = a.transposed() * a;
  for (int i = 0; i < n; ++i) spd(i, i) += n;
  return spd;
}

// --- Matrix ------------------------------------------------------------------

TEST(MatrixTest, IdentityProduct) {
  const Matrix a({{1, 2}, {3, 4}});
  const Matrix i = Matrix::identity(2);
  EXPECT_LT(relative_difference(a * i, a), 1e-15);
  EXPECT_LT(relative_difference(i * a, a), 1e-15);
}

TEST(MatrixTest, ProductMatchesHand) {
  const Matrix a({{1, 2}, {3, 4}});
  const Matrix b({{5, 6}, {7, 8}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, TransposeInvolution) {
  const Matrix a({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_LT(relative_difference(t.transposed(), a), 1e-15);
}

TEST(MatrixTest, ApplyMatchesProduct) {
  const Matrix a({{1, 2}, {3, 4}, {5, 6}});
  const auto y = a.apply({1.0, -1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(MatrixTest, SymmetricDetection) {
  EXPECT_TRUE(Matrix({{1, 2}, {2, 1}}).symmetric());
  EXPECT_FALSE(Matrix({{1, 2}, {3, 1}}).symmetric());
  EXPECT_FALSE(Matrix(2, 3).symmetric());
}

TEST(MatrixTest, NormsAndOffDiagonal) {
  const Matrix a({{3, 0}, {4, 0}});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(a.max_off_diagonal(), 4.0);
}

TEST(MatrixTest, DimensionMismatchAborts) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_DEATH((void)(a * b), "mismatch");
}

// --- Jacobi ------------------------------------------------------------------

TEST(JacobiTest, DiagonalMatrixTrivial) {
  Matrix d(3, 3);
  d(0, 0) = 1.0;
  d(1, 1) = 5.0;
  d(2, 2) = 3.0;
  const EigenResult r = jacobi_eigen(d);
  EXPECT_NEAR(r.values[0], 5.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
  EXPECT_NEAR(r.values[2], 1.0, 1e-12);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const EigenResult r = jacobi_eigen(Matrix({{2, 1}, {1, 2}}));
  EXPECT_NEAR(r.values[0], 3.0, 1e-12);
  EXPECT_NEAR(r.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2).
  EXPECT_NEAR(std::abs(r.vectors(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::abs(r.vectors(1, 0)), std::sqrt(0.5), 1e-10);
}

class JacobiPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobiPropertyTest, ReconstructsInput) {
  const int n = GetParam();
  const Matrix a = random_spd(n, 100 + n);
  const EigenResult r = jacobi_eigen(a);
  // A == V diag(L) V^T
  Matrix recon(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) {
        acc += r.vectors(i, k) * r.values[k] * r.vectors(j, k);
      }
      recon(i, j) = acc;
    }
  }
  EXPECT_LT(relative_difference(recon, a), 1e-9);
}

TEST_P(JacobiPropertyTest, VectorsOrthonormal) {
  const int n = GetParam();
  const Matrix a = random_spd(n, 200 + n);
  const EigenResult r = jacobi_eigen(a);
  const Matrix vtv = r.vectors.transposed() * r.vectors;
  EXPECT_LT(relative_difference(vtv, Matrix::identity(n)), 1e-10);
}

TEST_P(JacobiPropertyTest, ValuesSortedDescending) {
  const int n = GetParam();
  const EigenResult r = jacobi_eigen(random_spd(n, 300 + n));
  for (int i = 1; i < n; ++i) EXPECT_GE(r.values[i - 1], r.values[i]);
}

TEST_P(JacobiPropertyTest, EigenEquationHolds) {
  const int n = GetParam();
  const Matrix a = random_spd(n, 400 + n);
  const EigenResult r = jacobi_eigen(a);
  for (int k = 0; k < n; ++k) {
    std::vector<double> v(n);
    for (int i = 0; i < n; ++i) v[i] = r.vectors(i, k);
    const auto av = a.apply(v);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], r.values[k] * v[i], 1e-8 * a.frobenius_norm());
    }
  }
}

TEST_P(JacobiPropertyTest, TraceEqualsSumOfValues) {
  const int n = GetParam();
  const Matrix a = random_spd(n, 500 + n);
  const EigenResult r = jacobi_eigen(a);
  double trace = 0.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += r.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9 * std::abs(trace));
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiPropertyTest,
                         ::testing::Values(2, 3, 5, 8, 16, 32, 64));

TEST(JacobiTest, SlightAsymmetryTolerated) {
  Matrix a({{2, 1.0000001}, {0.9999999, 2}});
  const EigenResult r = jacobi_eigen(a);
  EXPECT_NEAR(r.values[0], 3.0, 1e-6);
}

TEST(JacobiTest, NonSquareAborts) {
  EXPECT_DEATH((void)jacobi_eigen(Matrix(2, 3)), "square");
}

TEST(JacobiTest, FlopsEstimatePositiveAndCubic) {
  EXPECT_GT(jacobi_flops(10), 0.0);
  // Roughly cubic growth.
  EXPECT_GT(jacobi_flops(100), 500.0 * jacobi_flops(10));
}

// --- Accumulators -------------------------------------------------------------

TEST(MeanAccumulatorTest, SimpleMean) {
  MeanAccumulator acc(2);
  acc.add(std::vector<float>{1.0f, 2.0f});
  acc.add(std::vector<float>{3.0f, 6.0f});
  const auto m = acc.mean();
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 4.0);
}

TEST(MeanAccumulatorTest, MergeEqualsSequential) {
  Rng rng(7);
  std::vector<std::vector<float>> pixels;
  for (int i = 0; i < 100; ++i) {
    pixels.push_back({static_cast<float>(rng.uniform()),
                      static_cast<float>(rng.uniform()),
                      static_cast<float>(rng.uniform())});
  }
  MeanAccumulator whole(3);
  for (const auto& p : pixels) whole.add(p);
  MeanAccumulator a(3), b(3);
  for (int i = 0; i < 40; ++i) a.add(pixels[i]);
  for (int i = 40; i < 100; ++i) b.add(pixels[i]);
  a.merge(b);
  const auto m1 = whole.mean();
  const auto m2 = a.mean();
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(m1[i], m2[i], 1e-12);
}

TEST(MeanAccumulatorTest, EncodeDecodeRoundTrip) {
  MeanAccumulator acc(2);
  acc.add(std::vector<float>{1.5f, -2.0f});
  const auto decoded = MeanAccumulator::decode(acc.encode());
  EXPECT_EQ(decoded.count(), 1u);
  EXPECT_DOUBLE_EQ(decoded.mean()[0], 1.5);
}

TEST(MeanAccumulatorTest, EmptyMeanAborts) {
  MeanAccumulator acc(2);
  EXPECT_DEATH((void)acc.mean(), "empty");
}

TEST(CovarianceTest, IdentityForUnitAxes) {
  // Pixels at +/- e_i around zero mean: covariance is diagonal.
  std::vector<double> mean{0.0, 0.0};
  CovarianceAccumulator acc(2, mean);
  acc.add(std::vector<float>{1.0f, 0.0f});
  acc.add(std::vector<float>{-1.0f, 0.0f});
  acc.add(std::vector<float>{0.0f, 2.0f});
  acc.add(std::vector<float>{0.0f, -2.0f});
  const Matrix cov = acc.covariance();
  EXPECT_DOUBLE_EQ(cov(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(cov(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 0.0);
}

TEST(CovarianceTest, MergeEqualsSequential) {
  Rng rng(13);
  const int dims = 5;
  std::vector<double> mean(dims, 0.5);
  CovarianceAccumulator whole(dims, mean);
  CovarianceAccumulator p1(dims, mean), p2(dims, mean), p3(dims, mean);
  for (int i = 0; i < 300; ++i) {
    std::vector<float> px(dims);
    for (auto& v : px) v = static_cast<float>(rng.uniform());
    whole.add(px);
    (i % 3 == 0 ? p1 : i % 3 == 1 ? p2 : p3).add(px);
  }
  p1.merge(p2);
  p1.merge(p3);
  EXPECT_LT(relative_difference(whole.covariance(), p1.covariance()), 1e-12);
}

TEST(CovarianceTest, EncodeDecodeRoundTrip) {
  std::vector<double> mean{1.0, 2.0};
  CovarianceAccumulator acc(2, mean);
  acc.add(std::vector<float>{2.0f, 1.0f});
  acc.add(std::vector<float>{0.0f, 3.0f});
  const auto decoded = CovarianceAccumulator::decode(acc.encode());
  EXPECT_EQ(decoded.count(), 2u);
  EXPECT_LT(relative_difference(decoded.covariance(), acc.covariance()),
            1e-15);
}

TEST(CovarianceTest, MismatchedMeansAbortOnMerge) {
  CovarianceAccumulator a(2, {0.0, 0.0});
  CovarianceAccumulator b(2, {1.0, 0.0});
  EXPECT_DEATH(a.merge(b), "different means");
}

TEST(CovarianceTest, SymmetricOutput) {
  Rng rng(17);
  std::vector<double> mean(4, 0.0);
  CovarianceAccumulator acc(4, mean);
  for (int i = 0; i < 50; ++i) {
    std::vector<float> px(4);
    for (auto& v : px) v = static_cast<float>(rng.normal());
    acc.add(px);
  }
  EXPECT_TRUE(acc.covariance().symmetric(1e-12));
}

// --- MomentAccumulator -------------------------------------------------------

std::vector<std::vector<float>> random_pixels(int n, int dims,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> pixels(n);
  for (auto& px : pixels) {
    px.resize(dims);
    for (auto& v : px) v = static_cast<float>(rng.uniform(0.05, 0.9));
  }
  return pixels;
}

/// The two-pass reference: exact mean first, then centered covariance.
Matrix two_pass_covariance(const std::vector<std::vector<float>>& pixels,
                           std::vector<double>* mean_out) {
  const int dims = static_cast<int>(pixels.front().size());
  MeanAccumulator mean_acc(dims);
  for (const auto& px : pixels) mean_acc.add(px);
  *mean_out = mean_acc.mean();
  CovarianceAccumulator cov(dims, *mean_out);
  for (const auto& px : pixels) cov.add(px);
  return cov.covariance();
}

TEST(MomentAccumulatorTest, MatchesTwoPassReference) {
  const auto pixels = random_pixels(200, 7, 23);
  std::vector<double> ref_mean;
  const Matrix ref_cov = two_pass_covariance(pixels, &ref_mean);

  // Origin = first pixel, as the fused engine uses.
  std::vector<double> origin(pixels[0].begin(), pixels[0].end());
  MomentAccumulator mom(7, origin);
  for (const auto& px : pixels) mom.add(px);
  const auto mean = mom.mean();
  for (int i = 0; i < 7; ++i) EXPECT_NEAR(mean[i], ref_mean[i], 1e-12);
  EXPECT_LT(relative_difference(mom.covariance(), ref_cov), 1e-10);
}

TEST(MomentAccumulatorTest, BlockedAddMatchesScalarAdd) {
  const int dims = 11;
  const auto pixels = random_pixels(100, dims, 5);
  std::vector<float> flat;
  for (const auto& px : pixels) flat.insert(flat.end(), px.begin(), px.end());

  std::vector<double> origin(dims, 0.3);
  MomentAccumulator scalar(dims, origin);
  for (const auto& px : pixels) scalar.add(px);
  MomentAccumulator blocked(dims, origin);
  blocked.add_block(flat.data(), 60);  // two uneven blocks
  blocked.add_block(flat.data() + 60 * dims, 40);

  EXPECT_EQ(blocked.count(), scalar.count());
  EXPECT_LT(relative_difference(blocked.covariance(), scalar.covariance()),
            1e-13);
}

TEST(MomentAccumulatorTest, SubBlockTailsMatchScalarAdd) {
  // 1..5-row blocks (the SIMD rank-k kernel's tail shapes) at an odd dims.
  const int dims = 9;
  const auto pixels = random_pixels(15, dims, 51);
  std::vector<float> flat;
  for (const auto& px : pixels) flat.insert(flat.end(), px.begin(), px.end());
  std::vector<double> origin(dims, 0.2);

  MomentAccumulator scalar(dims, origin);
  for (const auto& px : pixels) scalar.add(px);
  MomentAccumulator blocked(dims, origin);
  std::size_t off = 0;
  for (int rows = 1; rows <= 5; ++rows) {  // 1+2+3+4+5 = 15 pixels
    blocked.add_block(flat.data() + off * dims, rows);
    off += static_cast<std::size_t>(rows);
  }
  EXPECT_EQ(blocked.count(), scalar.count());
  EXPECT_LT(relative_difference(blocked.covariance(), scalar.covariance()),
            1e-12);
}

TEST(CovarianceAccumulatorTest, BlockedAddMatchesScalarAdd) {
  const int dims = 13;
  const auto pixels = random_pixels(70, dims, 61);
  std::vector<float> flat;
  for (const auto& px : pixels) flat.insert(flat.end(), px.begin(), px.end());
  std::vector<double> mean(dims, 0.45);

  CovarianceAccumulator scalar(dims, mean);
  for (const auto& px : pixels) scalar.add(px);
  CovarianceAccumulator blocked(dims, mean);
  blocked.add_block(flat.data(), 33);  // uneven blocks with ragged tails
  blocked.add_block(flat.data() + 33 * dims, 32);
  blocked.add_block(flat.data() + 65 * dims, 5);

  EXPECT_EQ(blocked.count(), scalar.count());
  EXPECT_LT(relative_difference(blocked.covariance(), scalar.covariance()),
            1e-12);
}

TEST(MomentAccumulatorTest, RemoveRetractsExactly) {
  const int dims = 6;
  const auto pixels = random_pixels(50, dims, 9);
  std::vector<double> origin(dims, 0.4);

  MomentAccumulator with_all(dims, origin);
  for (const auto& px : pixels) with_all.add(px);
  for (int i = 40; i < 50; ++i) with_all.remove(pixels[i]);

  MomentAccumulator without(dims, origin);
  for (int i = 0; i < 40; ++i) without.add(pixels[i]);

  EXPECT_EQ(with_all.count(), without.count());
  const auto m1 = with_all.mean();
  const auto m2 = without.mean();
  for (int i = 0; i < dims; ++i) EXPECT_NEAR(m1[i], m2[i], 1e-12);
  EXPECT_LT(relative_difference(with_all.covariance(), without.covariance()),
            1e-9);
}

TEST(MomentAccumulatorTest, MergeEqualsSequential) {
  const int dims = 5;
  const auto pixels = random_pixels(120, dims, 31);
  std::vector<double> origin(dims, 0.5);
  MomentAccumulator whole(dims, origin);
  MomentAccumulator a(dims, origin), b(dims, origin);
  for (int i = 0; i < 120; ++i) {
    whole.add(pixels[i]);
    (i < 50 ? a : b).add(pixels[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_LT(relative_difference(whole.covariance(), a.covariance()), 1e-12);
}

TEST(MomentAccumulatorTest, MismatchedOriginsAbortOnMerge) {
  MomentAccumulator a(2, {0.0, 0.0});
  MomentAccumulator b(2, {1.0, 0.0});
  EXPECT_DEATH(a.merge(b), "different origins");
}

TEST(MomentAccumulatorTest, EmptyStatisticsAbort) {
  MomentAccumulator acc(2, {0.0, 0.0});
  EXPECT_DEATH((void)acc.mean(), "empty");
  EXPECT_DEATH((void)acc.covariance(), "empty");
  EXPECT_DEATH(acc.remove(std::vector<float>{1.0f, 2.0f}), "empty");
}

}  // namespace
}  // namespace rif::linalg
