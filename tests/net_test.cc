#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulation.h"

namespace rif::net {
namespace {

struct LanFixture : ::testing::Test {
  sim::Simulation sim;
  cluster::Cluster cluster{sim};
  LanConfig config;

  LanFixture() {
    config.latency = from_micros(100);
    config.per_message_overhead = from_millis(1);
    config.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s for round numbers
    cluster.add_nodes(4);
  }
};

TEST_F(LanFixture, TransferTimeIsOverheadPlusBytesPlusLatency) {
  LanNetwork net(cluster, config);
  SimTime arrival = -1;
  net.send(0, 1, 1000000, [&] { arrival = sim.now(); });
  sim.run();
  // 1ms overhead + 1s uplink + 100us latency + 1s receiver downlink
  // (store-and-forward through the switch).
  EXPECT_EQ(arrival, from_millis(1) + from_seconds(1.0) + from_micros(100) +
                         from_seconds(1.0));
}

TEST_F(LanFixture, ControlLaneBypassesBulkQueue) {
  LanNetwork net(cluster, config);
  SimTime bulk = -1, control = -1;
  net.send(0, 1, 1000000, [&] { bulk = sim.now(); });
  net.send(0, 1, 64, [&] { control = sim.now(); });  // ack-sized
  sim.run();
  // The small message does not wait for the 1 MB transfer.
  EXPECT_LT(control, bulk);
  EXPECT_LT(control, from_millis(5));
}

TEST_F(LanFixture, ConvergingBulkFlowsSerializeAtReceiver) {
  LanNetwork net(cluster, config);
  SimTime a = -1, b = -1;
  // Different senders, same receiver: downlink serializes.
  net.send(0, 3, 1000000, [&] { a = sim.now(); });
  net.send(1, 3, 1000000, [&] { b = sim.now(); });
  sim.run();
  EXPECT_GE(std::max(a, b) - std::min(a, b), from_seconds(1.0));
}

TEST_F(LanFixture, SendReturnsArrivalTime) {
  LanNetwork net(cluster, config);
  SimTime observed = -1;
  const SimTime predicted = net.send(0, 1, 500000, [&] { observed = sim.now(); });
  sim.run();
  EXPECT_EQ(predicted, observed);
}

TEST_F(LanFixture, SenderNicSerializesMessages) {
  LanNetwork net(cluster, config);
  SimTime first = -1, second = -1;
  net.send(0, 1, 1000000, [&] { first = sim.now(); });
  net.send(0, 2, 1000000, [&] { second = sim.now(); });
  sim.run();
  // The second message waits for the first to clear the sender's NIC.
  EXPECT_EQ(second - first, from_millis(1) + from_seconds(1.0));
}

TEST_F(LanFixture, DistinctSendersDoNotSerialize) {
  LanNetwork net(cluster, config);
  SimTime a = -1, b = -1;
  net.send(0, 2, 1000000, [&] { a = sim.now(); });
  net.send(1, 3, 1000000, [&] { b = sim.now(); });
  sim.run();
  EXPECT_EQ(a, b);
}

TEST_F(LanFixture, LoopbackIsCheap) {
  LanNetwork net(cluster, config);
  SimTime arrival = -1;
  net.send(2, 2, 1 << 20, [&] { arrival = sim.now(); });
  sim.run();
  EXPECT_LT(arrival, from_micros(10));
}

TEST_F(LanFixture, DeliveryToDeadNodeDropped) {
  LanNetwork net(cluster, config);
  bool delivered = false;
  net.send(0, 1, 1000000, [&] { delivered = true; });
  // Node 1 dies while the message is on the wire.
  sim.schedule_at(from_millis(100), [&] { cluster.fail_node(1); });
  sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

TEST_F(LanFixture, PartitionCutsBothDirections) {
  LanNetwork net(cluster, config);
  net.set_partitioned(0, 1, true);
  int delivered = 0;
  net.send(0, 1, 10, [&] { ++delivered; });
  net.send(1, 0, 10, [&] { ++delivered; });
  net.send(0, 2, 10, [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.stats().messages_dropped, 2u);
}

TEST_F(LanFixture, PartitionCanBeMended) {
  LanNetwork net(cluster, config);
  net.set_partitioned(0, 1, true);
  net.set_partitioned(0, 1, false);
  bool delivered = false;
  net.send(0, 1, 10, [&] { delivered = true; });
  sim.run();
  EXPECT_TRUE(delivered);
}

TEST_F(LanFixture, LossProbabilityDropsSome) {
  LanNetwork net(cluster, config);
  net.set_loss_probability(0.5, 1234);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    net.send(0, 1, 10, [&] { ++delivered; });
  }
  sim.run();
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);
  EXPECT_EQ(net.stats().messages_dropped + delivered, 200u);
}

TEST_F(LanFixture, StatsCountBytes) {
  LanNetwork net(cluster, config);
  net.send(0, 1, 123, [] {});
  net.send(0, 1, 877, [] {});
  sim.run();
  EXPECT_EQ(net.stats().bytes_sent, 1000u);
  EXPECT_EQ(net.stats().messages_sent, 2u);
  EXPECT_EQ(net.stats().messages_delivered, 2u);
}

TEST(SharedBusTest, AllSendersSerializeOnOneWire) {
  sim::Simulation sim;
  cluster::Cluster cluster(sim);
  cluster.add_nodes(4);
  LanConfig cfg;
  cfg.per_message_overhead = from_millis(1);
  cfg.bandwidth_bytes_per_sec = 1e6;
  cfg.latency = from_micros(100);
  SharedBusNetwork net(cluster, cfg);
  SimTime a = -1, b = -1;
  // Different senders AND different receivers: still serialized on a bus.
  net.send(0, 2, 1000000, [&] { a = sim.now(); });
  net.send(1, 3, 1000000, [&] { b = sim.now(); });
  sim.run();
  EXPECT_GE(std::max(a, b) - std::min(a, b), from_seconds(1.0));
}

TEST(SharedBusTest, ControlLaneStillBypasses) {
  sim::Simulation sim;
  cluster::Cluster cluster(sim);
  cluster.add_nodes(3);
  LanConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e6;
  SharedBusNetwork net(cluster, cfg);
  SimTime bulk = -1, control = -1;
  net.send(0, 1, 1000000, [&] { bulk = sim.now(); });
  net.send(2, 1, 64, [&] { control = sim.now(); });
  sim.run();
  EXPECT_LT(control, bulk);
}

TEST(SmpNetworkTest, HandoffIsFixedAndSizeIndependent) {
  sim::Simulation sim;
  cluster::Cluster cluster(sim);
  cluster.add_nodes(2);
  SmpConfig cfg;
  cfg.handoff = from_micros(2);
  SmpNetwork net(cluster, cfg);
  SimTime small = -1, big = -1;
  net.send(0, 1, 10, [&] { small = sim.now(); });
  sim.run();
  const SimTime first = small;
  net.send(0, 1, 100 << 20, [&] { big = sim.now(); });
  sim.run();
  EXPECT_EQ(first, from_micros(2));
  EXPECT_EQ(big - first, from_micros(2));
}

TEST(SmpNetworkTest, OrderPreservedPerSender) {
  sim::Simulation sim;
  cluster::Cluster cluster(sim);
  cluster.add_nodes(2);
  SmpNetwork net(cluster);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    net.send(0, 1, 10, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace rif::net
