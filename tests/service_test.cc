#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <tuple>

#include "core/distributed/fusion_job.h"
#include "core/parallel/parallel_pct.h"
#include "hsi/cube_io.h"
#include "hsi/scene.h"
#include "linalg/kernels.h"
#include "obs/chrome_trace.h"
#include "obs/span_tracer.h"
#include "obs/trace_check.h"
#include "service/service.h"
#include "stream/streaming_engine.h"

namespace rif::service {
namespace {

core::FusionJobConfig cost_only_job(int workers, int tiles_per_worker = 2) {
  core::FusionJobConfig cfg;
  cfg.mode = core::ExecutionMode::kCostOnly;
  cfg.shape = {320, 320, 105};
  cfg.workers = workers;
  cfg.tiles_per_worker = tiles_per_worker;
  return cfg;
}

JobRequest request(const std::string& tenant, int workers,
                   Priority priority = Priority::kNormal, SimTime arrival = 0) {
  JobRequest r;
  r.tenant = tenant;
  r.config = cost_only_job(workers);
  r.priority = priority;
  r.arrival = arrival;
  return r;
}

const JobRecord& record_of(const ServiceReport& report, JobId id) {
  return report.jobs[static_cast<std::size_t>(id)];
}

// --- Acceptance-criteria scenario -------------------------------------------

TEST(ServiceTest, TwoTenantsManyJobsShareOneCluster) {
  ServiceConfig cfg;
  cfg.worker_nodes = 8;
  FusionService service(cfg);

  // Two tenants, ten jobs, all arriving together: small jobs must pack
  // concurrently onto disjoint worker sets.
  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(service.submit(request("alice", 4)).id);
    ids.push_back(service.submit(request("bob", 2)).id);
  }
  const ServiceReport report = service.run();

  ASSERT_TRUE(report.all_completed);
  EXPECT_EQ(report.jobs_submitted, 10);
  EXPECT_EQ(report.jobs_completed, 10);
  EXPECT_EQ(report.jobs_rejected, 0);
  EXPECT_GE(report.max_concurrent_jobs, 2);
  EXPECT_GT(report.throughput_jobs_per_sec, 0.0);
  EXPECT_GE(report.latency_p99, report.latency_p50);

  // Concurrent jobs always ran on disjoint worker sets.
  for (std::size_t a = 0; a < report.jobs.size(); ++a) {
    for (std::size_t b = a + 1; b < report.jobs.size(); ++b) {
      const JobRecord& ra = report.jobs[a];
      const JobRecord& rb = report.jobs[b];
      const bool overlap = ra.start_time < rb.finish_time &&
                           rb.start_time < ra.finish_time;
      if (!overlap) continue;
      std::set<cluster::NodeId> nodes(ra.leased_nodes.begin(),
                                      ra.leased_nodes.end());
      for (const cluster::NodeId n : rb.leased_nodes) {
        EXPECT_FALSE(nodes.contains(n))
            << "jobs " << ra.id << " and " << rb.id
            << " shared node " << n << " while overlapping";
      }
    }
  }

  // Per-tenant accounting equals the sum of the per-job records.
  ASSERT_EQ(report.tenants.size(), 2u);
  for (const TenantAccount& acc : report.tenants) {
    std::uint64_t completed = 0;
    double flops = 0.0;
    double wait = 0.0;
    double service_time = 0.0;
    for (const JobRecord& r : report.jobs) {
      if (r.tenant != acc.tenant || !r.completed) continue;
      ++completed;
      flops += r.flops_charged;
      wait += r.wait_seconds;
      service_time += r.service_seconds;
    }
    EXPECT_EQ(acc.jobs_submitted, 5u);
    EXPECT_EQ(acc.jobs_completed, completed);
    EXPECT_DOUBLE_EQ(acc.flops_charged, flops);
    EXPECT_DOUBLE_EQ(acc.queue_wait.total(), wait);
    EXPECT_DOUBLE_EQ(acc.service_time.total(), service_time);
    EXPECT_GT(acc.flops_charged, 0.0);
  }
}

// --- Consistency with the single-job runner ---------------------------------

TEST(ServiceTest, LoneJobMatchesStandaloneRunner) {
  const core::FusionReport standalone =
      core::run_fusion_job(cost_only_job(4));
  ASSERT_TRUE(standalone.completed);

  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  FusionService service(cfg);
  service.submit(request("solo", 4));
  const ServiceReport report = service.run();

  ASSERT_TRUE(report.all_completed);
  // Same cluster layout (head + 4 workers), same arrival at t=0: the service
  // run must reproduce the paper-world elapsed time exactly.
  EXPECT_DOUBLE_EQ(record_of(report, 0).service_seconds,
                   standalone.elapsed_seconds);
}

TEST(ServiceTest, DeterministicAcrossRuns) {
  auto play = [] {
    ServiceConfig cfg;
    cfg.worker_nodes = 6;
    FusionService service(cfg);
    service.submit(request("a", 4, Priority::kNormal, 0));
    service.submit(request("b", 2, Priority::kHigh, from_millis(5)));
    service.submit(request("a", 6, Priority::kBatch, from_millis(10)));
    return service.run();
  };
  const ServiceReport r1 = play();
  const ServiceReport r2 = play();
  EXPECT_DOUBLE_EQ(r1.makespan_seconds, r2.makespan_seconds);
  EXPECT_EQ(r1.sim_events, r2.sim_events);
}

// --- Typed rejection (no hangs) ---------------------------------------------

TEST(ServiceTest, RejectsJobLargerThanClusterWithTypedError) {
  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  FusionService service(cfg);

  const SubmitResult too_big = service.submit(request("greedy", 8));
  EXPECT_FALSE(too_big.accepted());
  EXPECT_EQ(too_big.rejected, RejectReason::kTooManyWorkers);

  JobRequest replicated = request("greedy", 2);
  replicated.config.replication = 2;  // service runtime is not resilient
  const SubmitResult bad = service.submit(replicated);
  EXPECT_EQ(bad.rejected, RejectReason::kBadConfig);

  JobRequest zero = request("greedy", 2);
  zero.config.workers = 0;
  EXPECT_EQ(service.submit(zero).rejected, RejectReason::kBadConfig);

  // The run must terminate immediately — rejected jobs never queue.
  const ServiceReport report = service.run();
  EXPECT_EQ(report.jobs_submitted, 3);
  EXPECT_EQ(report.jobs_rejected, 3);
  EXPECT_EQ(report.jobs_completed, 0);
  EXPECT_TRUE(report.all_completed);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].jobs_rejected, 3u);
}

TEST(ServiceTest, EmptyQueueDrainsImmediately) {
  FusionService service(ServiceConfig{});
  const ServiceReport report = service.run();
  EXPECT_TRUE(report.all_completed);
  EXPECT_EQ(report.jobs_submitted, 0);
  EXPECT_DOUBLE_EQ(report.makespan_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.throughput_jobs_per_sec, 0.0);
}

TEST(ServiceTest, BoundedQueueRejectsOverflowAtArrival) {
  ServiceConfig cfg;
  cfg.worker_nodes = 2;
  cfg.max_queue_length = 1;
  FusionService service(cfg);

  service.submit(request("t", 2, Priority::kNormal, 0));  // runs immediately
  service.submit(request("t", 2, Priority::kNormal, from_millis(1)));  // queued
  const SubmitResult spilled =
      service.submit(request("t", 2, Priority::kNormal, from_millis(2)));
  ASSERT_TRUE(spilled.accepted());  // structurally fine; rejected at arrival

  const ServiceReport report = service.run();
  EXPECT_EQ(report.jobs_completed, 2);
  EXPECT_EQ(report.jobs_rejected, 1);
  EXPECT_EQ(record_of(report, spilled.id).rejected, RejectReason::kQueueFull);
  EXPECT_TRUE(report.all_completed);
}

// --- Scheduling policies ----------------------------------------------------

TEST(ServiceTest, InterleavedPrioritiesFromTwoTenantsRespectClasses) {
  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  FusionService service(cfg);

  // A blocker occupies the whole pool; the rest arrive while it runs and
  // every one needs the full pool, so admission order is pure queue order.
  const JobId blocker = service.submit(request("a", 4, Priority::kNormal, 0)).id;
  const JobId batch1 =
      service.submit(request("a", 4, Priority::kBatch, from_millis(1))).id;
  const JobId high1 =
      service.submit(request("b", 4, Priority::kHigh, from_millis(2))).id;
  const JobId batch2 =
      service.submit(request("b", 4, Priority::kBatch, from_millis(3))).id;
  const JobId normal1 =
      service.submit(request("a", 4, Priority::kNormal, from_millis(4))).id;
  const JobId high2 =
      service.submit(request("a", 4, Priority::kHigh, from_millis(5))).id;

  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);

  const auto start = [&](JobId id) { return record_of(report, id).start_time; };
  // high before normal before batch; FIFO within a class.
  EXPECT_LT(start(blocker), start(high1));
  EXPECT_LT(start(high1), start(high2));
  EXPECT_LT(start(high2), start(normal1));
  EXPECT_LT(start(normal1), start(batch1));
  EXPECT_LT(start(batch1), start(batch2));
}

TEST(ServiceTest, FirstFitBackfillsPastTooLargeHead) {
  ServiceConfig cfg;
  cfg.worker_nodes = 6;
  FusionService service(cfg);

  const JobId blocker = service.submit(request("t", 4, Priority::kNormal, 0)).id;
  // big doesn't fit the 2 free nodes; small arrives later but does.
  const JobId big =
      service.submit(request("t", 4, Priority::kNormal, from_millis(1))).id;
  const JobId small =
      service.submit(request("t", 2, Priority::kNormal, from_millis(2))).id;

  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);
  EXPECT_LT(record_of(report, small).start_time,
            record_of(report, big).start_time);
  EXPECT_EQ(record_of(report, small).start_time,
            record_of(report, blocker).start_time + from_millis(2));
}

TEST(ServiceTest, SmallestFirstPacksSmallJobsBeforeBigOnes) {
  const auto play = [](AdmissionPolicy policy) {
    ServiceConfig cfg;
    cfg.worker_nodes = 4;
    cfg.admission = policy;
    FusionService service(cfg);
    const JobId blocker =
        service.submit(request("t", 4, Priority::kNormal, 0)).id;
    (void)blocker;
    const JobId big =
        service.submit(request("t", 4, Priority::kNormal, from_millis(1))).id;
    const JobId small1 =
        service.submit(request("t", 2, Priority::kNormal, from_millis(2))).id;
    const JobId small2 =
        service.submit(request("t", 2, Priority::kNormal, from_millis(3))).id;
    const ServiceReport report = service.run();
    return std::tuple{record_of(report, big).start_time,
                      record_of(report, small1).start_time,
                      record_of(report, small2).start_time,
                      report.all_completed};
  };

  // First-fit honors FIFO: the big job (queued first) runs before the
  // small ones once the blocker's nodes free up.
  const auto [ff_big, ff_s1, ff_s2, ff_ok] =
      play(AdmissionPolicy::kFirstFit);
  ASSERT_TRUE(ff_ok);
  EXPECT_LT(ff_big, ff_s1);
  EXPECT_LT(ff_big, ff_s2);

  // Smallest-first packs the two 2-node jobs concurrently before the big one.
  const auto [sf_big, sf_s1, sf_s2, sf_ok] =
      play(AdmissionPolicy::kSmallestFirst);
  ASSERT_TRUE(sf_ok);
  EXPECT_LT(sf_s1, sf_big);
  EXPECT_LT(sf_s2, sf_big);
  EXPECT_EQ(sf_s1, sf_s2);  // they run side by side
}

TEST(ServiceTest, SmallestFirstBreaksDemandTiesFifo) {
  // Documented behaviour pinned: among EQUAL worker demands, kSmallestFirst
  // admits the earliest-queued job (priority-then-FIFO tie-break), not an
  // arbitrary one.
  ServiceConfig cfg;
  cfg.worker_nodes = 2;
  cfg.admission = AdmissionPolicy::kSmallestFirst;
  FusionService service(cfg);
  // A blocker owns the whole cluster so the three equal-demand jobs queue
  // up behind it in arrival order; only one can run at a time afterwards.
  (void)service.submit(request("t", 2, Priority::kNormal, 0));
  const JobId first =
      service.submit(request("t", 2, Priority::kNormal, from_millis(1))).id;
  const JobId second =
      service.submit(request("t", 2, Priority::kNormal, from_millis(2))).id;
  const JobId third =
      service.submit(request("t", 2, Priority::kNormal, from_millis(3))).id;
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);
  EXPECT_LT(record_of(report, first).start_time,
            record_of(report, second).start_time);
  EXPECT_LT(record_of(report, second).start_time,
            record_of(report, third).start_time);
}

// --- Host execution pool -----------------------------------------------------

TEST(ServiceTest, FullModeJobsExecuteOnSharedHostPool) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 32;
  scene_cfg.height = 32;
  scene_cfg.bands = 12;
  scene_cfg.seed = 21;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);

  ServiceConfig cfg;
  cfg.worker_nodes = 8;
  cfg.execution_threads = 4;
  FusionService service(cfg);

  // Three Full-mode jobs from two tenants over the same cube; they fuse
  // concurrently on the one shared 4-thread pool, each within its admitted
  // worker budget.
  const auto full_request = [&](const std::string& tenant, int workers,
                                SimTime arrival) {
    JobRequest r;
    r.tenant = tenant;
    r.config = cost_only_job(workers);
    r.config.mode = core::ExecutionMode::kFull;
    r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
    r.config.cube = &scene.cube;
    r.arrival = arrival;
    return r;
  };
  const JobId a = service.submit(full_request("alice", 4, 0)).id;
  const JobId b = service.submit(full_request("bob", 2, 0)).id;
  const JobId c = service.submit(full_request("alice", 2, from_millis(5))).id;
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);

  // Every job's composite matches the fused shared-memory engine run with
  // the same per-job tiling budget (workers * tiles_per_worker).
  for (const JobId id : {a, b, c}) {
    const JobRecord& rec = record_of(report, id);
    ASSERT_TRUE(rec.completed);
    core::ParallelPctConfig expect_cfg;
    expect_cfg.threads = 2;
    expect_cfg.tiles = rec.workers * 2;  // tiles_per_worker = 2
    const core::PctResult expected =
        core::fuse_parallel_fused(scene.cube, expect_cfg);
    EXPECT_EQ(rec.outcome.composite.data, expected.composite.data)
        << "job " << id;
    EXPECT_EQ(rec.outcome.unique_set_size, expected.unique_set_size);
    EXPECT_EQ(rec.outcome.eigenvalues, expected.eigenvalues);
    // Each host-executed job reports its wall time on the shared pool.
    EXPECT_GT(rec.host_seconds, 0.0) << "job " << id;
  }

  // Host-pool utilisation. (busy is capacity - idle by construction, so
  // assert the independently measured quantities instead.)
  const HostPoolStats& pool = report.host_pool;
  EXPECT_EQ(pool.threads, cfg.execution_threads);
  EXPECT_GT(pool.wall_seconds, 0.0);
  EXPECT_GT(pool.busy_seconds, 0.0);
  EXPECT_GE(pool.idle_seconds, 0.0);
  EXPECT_LE(pool.idle_seconds, pool.wall_seconds * pool.threads);
  EXPECT_GT(pool.utilization, 0.0);
  EXPECT_LE(pool.utilization, 1.0);
  // Every job's fused run happened inside the host-execution phase.
  for (const JobId id : {a, b, c}) {
    EXPECT_LE(record_of(report, id).host_seconds, pool.wall_seconds + 1e-6);
  }
}

TEST(ServiceTest, HostPoolOffKeepsActorExecution) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 16;
  scene_cfg.height = 16;
  scene_cfg.bands = 8;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);

  ServiceConfig cfg;
  cfg.worker_nodes = 4;  // execution_threads stays 0
  FusionService service(cfg);
  JobRequest r;
  r.tenant = "t";
  r.config = cost_only_job(2);
  r.config.mode = core::ExecutionMode::kFull;
  r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
  r.config.cube = &scene.cube;
  const JobId id = service.submit(r).id;
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);
  // The simulated actors computed the composite, exactly as before.
  EXPECT_EQ(record_of(report, id).outcome.composite.data.size(),
            static_cast<std::size_t>(scene.cube.pixel_count()) * 3);
  // No host pool: utilisation report stays empty.
  EXPECT_EQ(report.host_pool.threads, 0);
  EXPECT_EQ(report.host_pool.wall_seconds, 0.0);
  EXPECT_EQ(report.host_pool.utilization, 0.0);
  EXPECT_EQ(record_of(report, id).host_seconds, 0.0);
}

// --- Resiliency on the shared cluster ---------------------------------------

TEST(ServiceTest, ResilientJobRegeneratesWithinItsLease) {
  ServiceConfig cfg;
  cfg.worker_nodes = 6;
  cfg.runtime.resilient = true;
  cfg.runtime.regenerate = true;
  cfg.runtime.heartbeat_period = from_millis(250);
  cfg.runtime.failure_timeout = from_seconds(1);
  // Kill a node the first job will lease (deterministically nodes 1..4).
  cfg.failures = {{from_seconds(20), 2, -1}};
  FusionService service(cfg);

  // Replication that cannot get distinct nodes within the lease is refused:
  // a single crash would void the redundancy the tenant paid for.
  JobRequest squeezed = request("resilient-tenant", 1);
  squeezed.config.replication = 2;
  EXPECT_EQ(service.submit(squeezed).rejected, RejectReason::kBadConfig);

  JobRequest r = request("resilient-tenant", 4);
  r.config.replication = 2;
  const JobId id = service.submit(r).id;

  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);
  EXPECT_GE(report.protocol.failures_detected, 1u);
  EXPECT_GE(report.protocol.replicas_regenerated, 1u);

  // Regeneration never left the job's leased nodes. (The replicas are
  // retired after completion, but each member's final placement survives.)
  const JobRecord& rec = record_of(report, id);
  const std::set<cluster::NodeId> lease(rec.leased_nodes.begin(),
                                        rec.leased_nodes.end());
  const auto threads = service.runtime().threads_of_job(id);
  for (const scp::ThreadId tid : threads) {
    if (tid == threads.front()) continue;  // the manager lives on the head
    for (const scp::ReplicaInfo& m : service.runtime().members_of(tid)) {
      EXPECT_TRUE(lease.contains(m.node))
          << "replica of thread " << tid << " regenerated onto node "
          << m.node << " outside the lease";
    }
  }
}

TEST(ServiceTest, NonResilientJobFailsFastWhenLeasedNodeDies) {
  ServiceConfig cfg;  // default runtime: not resilient, no detector
  cfg.worker_nodes = 2;
  cfg.failures = {{from_seconds(20), 1, -1}};
  FusionService service(cfg);

  const JobId doomed = service.submit(request("t", 2, Priority::kNormal, 0)).id;
  const JobId later =
      service.submit(request("t", 1, Priority::kNormal, from_seconds(30))).id;
  const ServiceReport report = service.run();

  // The crash fails the leaseholder at the crash instant — no wedged lease,
  // no silent "neither completed nor failed" job.
  const JobRecord& rec = record_of(report, doomed);
  EXPECT_TRUE(rec.failed);
  EXPECT_EQ(rec.finish_time, from_seconds(20));
  EXPECT_EQ(report.jobs_failed, 1);
  // The surviving node is re-leasable; the later small job completes on it.
  EXPECT_TRUE(record_of(report, later).completed);
  EXPECT_EQ(record_of(report, later).leased_nodes,
            (std::vector<cluster::NodeId>{2}));
  EXPECT_FALSE(report.all_completed);
}

TEST(ServiceTest, RepairedNodeUnblocksQueuedJobs) {
  ServiceConfig cfg;
  cfg.worker_nodes = 1;
  // The only worker dies before the job arrives and comes back 10s later;
  // the repair must wake the scheduler, not strand the queued job.
  cfg.failures = {{from_seconds(1), 1, from_seconds(10)}};
  FusionService service(cfg);

  const JobId id =
      service.submit(request("t", 1, Priority::kNormal, from_seconds(2))).id;
  const ServiceReport report = service.run();

  ASSERT_TRUE(report.all_completed);
  EXPECT_EQ(record_of(report, id).start_time, from_seconds(11) + 1);
}

TEST(ServiceTest, DeadNodesAreNeverLeased) {
  ServiceConfig cfg;
  cfg.worker_nodes = 3;
  // Node 1 (lowest id, first pick otherwise) dies before any job arrives
  // and is never repaired.
  cfg.failures = {{from_millis(1), 1, -1}};
  FusionService service(cfg);

  const JobId id =
      service.submit(request("t", 2, Priority::kNormal, from_millis(10))).id;
  const ServiceReport report = service.run();

  ASSERT_TRUE(report.all_completed);
  const JobRecord& rec = record_of(report, id);
  EXPECT_EQ(rec.leased_nodes, (std::vector<cluster::NodeId>{2, 3}))
      << "job must be placed around the dead node, not on it";
}

TEST(ServiceTest, LostJobIsFailedAndServiceKeepsServing) {
  ServiceConfig cfg;
  cfg.worker_nodes = 2;
  cfg.runtime.resilient = true;
  cfg.runtime.regenerate = true;
  cfg.runtime.heartbeat_period = from_millis(250);
  cfg.runtime.failure_timeout = from_seconds(1);
  // Both worker nodes die (repaired after 5s): the unreplicated job running
  // on them is unrecoverable — regeneration is confined to its lease, which
  // is entirely dead — but the pool comes back for later arrivals.
  cfg.failures = {{from_seconds(20), 1, from_seconds(5)},
                  {from_seconds(20), 2, from_seconds(5)}};
  FusionService service(cfg);

  const JobId doomed = service.submit(request("t", 2, Priority::kNormal, 0)).id;
  // Arrives after the repair; the failed job's lease must have been
  // reclaimed so this one can run to completion.
  const JobId survivor =
      service.submit(request("t", 2, Priority::kNormal, from_seconds(30))).id;

  const ServiceReport report = service.run();
  EXPECT_TRUE(record_of(report, doomed).failed);
  EXPECT_EQ(report.jobs_failed, 1);
  EXPECT_FALSE(report.all_completed);
  EXPECT_TRUE(record_of(report, survivor).completed);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].jobs_failed, 1u);
  EXPECT_EQ(report.tenants[0].jobs_completed, 1u);
}

// --- Streaming job mode ------------------------------------------------------

namespace fs = std::filesystem;

/// Write a small scene cube to a temp file; caller removes it.
std::string write_scene_file(const hsi::Scene& scene,
                             const std::string& name) {
  const std::string path = (fs::temp_directory_path() / name).string();
  EXPECT_TRUE(hsi::save_cube(path, scene.cube, hsi::Interleave::kBip,
                             scene.wavelengths));
  return path;
}

JobRequest streaming_request(const std::string& tenant, int workers,
                             const std::string& cube_path, int chunk_lines) {
  JobRequest r;
  r.tenant = tenant;
  r.config = cost_only_job(workers);
  r.mode = JobMode::kStreaming;
  r.cube_path = cube_path;
  r.chunk_lines = chunk_lines;
  return r;
}

TEST(ServiceTest, StreamingJobFusesFromDiskInBoundedMemory) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 32;
  scene_cfg.height = 64;
  scene_cfg.bands = 10;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string path = write_scene_file(scene, "rif_svc_stream.dat");

  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  cfg.execution_threads = 2;
  FusionService service(cfg);
  const auto submit = service.submit(streaming_request("ana", 2, path, 8));
  ASSERT_TRUE(submit.accepted());
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);

  const JobRecord& rec = record_of(report, submit.id);
  ASSERT_TRUE(rec.completed);
  EXPECT_EQ(rec.mode, JobMode::kStreaming);
  // The admission budget was chunks, not the cube.
  EXPECT_EQ(rec.memory_demand, 4ull * 8 * 32 * 10 * sizeof(float));
  EXPECT_LT(rec.memory_demand, scene.cube.bytes());

  // Bit-identical to a direct streamed run with the job's admitted budget
  // (workers * tiles_per_worker sub-tiles per chunk).
  stream::StreamingConfig scfg;
  scfg.chunk_lines = 8;
  scfg.tiles_per_chunk = rec.workers * 2;
  const auto expect = stream::fuse_streaming(path, 2, scfg);
  ASSERT_TRUE(expect.has_value());
  EXPECT_EQ(rec.outcome.composite.data, expect->composite.data);
  EXPECT_EQ(rec.outcome.unique_set_size, expect->unique_set_size);

  // Pipeline counters surfaced per job and service-wide.
  EXPECT_EQ(rec.stream.chunks, 8);
  EXPECT_GT(rec.stream.bytes_read, 0u);
  EXPECT_LE(rec.stream.peak_buffer_bytes, rec.memory_demand);
  EXPECT_EQ(report.streaming.jobs, 1);
  EXPECT_EQ(report.streaming.bytes_read, rec.stream.bytes_read);
  EXPECT_EQ(report.streaming.max_peak_buffer_bytes,
            rec.stream.peak_buffer_bytes);
  // SIMD tier attribution rides along with every report.
  EXPECT_EQ(report.simd_backend, linalg::kernels::backend());
  EXPECT_GT(rec.host_seconds, 0.0);

  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(ServiceTest, StreamingJobStructuralValidation) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 8;
  scene_cfg.height = 8;
  scene_cfg.bands = 4;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string path = write_scene_file(scene, "rif_svc_stream_bad.dat");

  {
    // No host pool: nothing could ever stream the file.
    ServiceConfig cfg;
    cfg.worker_nodes = 4;  // execution_threads stays 0
    FusionService service(cfg);
    EXPECT_EQ(service.submit(streaming_request("t", 2, path, 8)).rejected,
              RejectReason::kBadConfig);
  }
  {
    ServiceConfig cfg;
    cfg.worker_nodes = 4;
    cfg.execution_threads = 1;
    FusionService service(cfg);
    // Missing file is caught at submission, not mid-run.
    EXPECT_EQ(service
                  .submit(streaming_request("t", 2, "/no/such/cube.dat", 8))
                  .rejected,
              RejectReason::kBadConfig);
    // So is a cube file that fails the shared size validation.
    fs::resize_file(path, 10);
    EXPECT_EQ(service.submit(streaming_request("t", 2, path, 8)).rejected,
              RejectReason::kBadConfig);
    // An in-memory cube alongside a streaming request is a contradiction.
    JobRequest both = streaming_request("t", 2, path, 8);
    both.config.cube = &scene.cube;
    EXPECT_EQ(service.submit(both).rejected, RejectReason::kBadConfig);
  }
  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(ServiceTest, MemoryBudgetSerializesHostJobs) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 24;
  scene_cfg.height = 24;
  scene_cfg.bands = 8;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);

  const auto full_request = [&](const std::string& tenant) {
    JobRequest r;
    r.tenant = tenant;
    r.config = cost_only_job(2);
    r.config.mode = core::ExecutionMode::kFull;
    r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
    r.config.cube = &scene.cube;
    return r;
  };

  // Budget fits one cube but not two: jobs that would pack onto disjoint
  // workers must instead run one after the other.
  ServiceConfig cfg;
  cfg.worker_nodes = 8;
  cfg.execution_threads = 2;
  cfg.host_memory_budget = scene.cube.bytes() + scene.cube.bytes() / 2;
  FusionService service(cfg);
  const JobId a = service.submit(full_request("alice")).id;
  const JobId b = service.submit(full_request("bob")).id;
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);
  EXPECT_EQ(report.max_concurrent_jobs, 1);
  EXPECT_EQ(record_of(report, a).memory_demand, scene.cube.bytes());
  EXPECT_EQ(record_of(report, b).memory_demand, scene.cube.bytes());
  // Without the budget the same pair runs concurrently (sanity check that
  // the serialization above really was the memory budget's doing).
  ServiceConfig unbudgeted = cfg;
  unbudgeted.host_memory_budget = 0;
  FusionService service2(unbudgeted);
  service2.submit(full_request("alice"));
  service2.submit(full_request("bob"));
  EXPECT_EQ(service2.run().max_concurrent_jobs, 2);
}

TEST(ServiceTest, OverBudgetJobRejectedOutright) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 16;
  scene_cfg.height = 16;
  scene_cfg.bands = 8;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string path = write_scene_file(scene, "rif_svc_overbudget.dat");

  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  cfg.execution_threads = 1;
  cfg.host_memory_budget = scene.cube.bytes() / 2;
  FusionService service(cfg);

  // The whole cube can never fit the budget...
  JobRequest full;
  full.tenant = "t";
  full.config = cost_only_job(2);
  full.config.mode = core::ExecutionMode::kFull;
  full.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
  full.config.cube = &scene.cube;
  EXPECT_EQ(service.submit(full).rejected, RejectReason::kOverMemoryBudget);

  // ...but STREAMING the same scene fits: 3 chunk buffers of 2 lines.
  JobRequest streamed = streaming_request("t", 2, path, 2);
  streamed.queue_depth = 3;
  const auto ok = service.submit(streamed);
  EXPECT_TRUE(ok.accepted());
  const ServiceReport report = service.run();
  EXPECT_TRUE(record_of(report, ok.id).completed);
  EXPECT_EQ(record_of(report, ok.id).outcome.composite.data.size(),
            static_cast<std::size_t>(scene.cube.pixel_count()) * 3);

  fs::remove(path);
  fs::remove(path + ".hdr");
}

// --- adaptive runtime control plane ------------------------------------------

TEST(ServiceTest, StreamingGeometryBoundsSharedWithEngine) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 8;
  scene_cfg.height = 8;
  scene_cfg.bands = 4;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string path = write_scene_file(scene, "rif_svc_geom.dat");

  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  cfg.execution_threads = 1;
  FusionService service(cfg);
  // Zero and huge geometry fail at SUBMIT through the same
  // runtime::validate_chunk_geometry the engine enforces mid-run.
  EXPECT_EQ(service.submit(streaming_request("t", 2, path, 0)).rejected,
            RejectReason::kBadConfig);
  EXPECT_EQ(service.submit(streaming_request("t", 2, path, 70000)).rejected,
            RejectReason::kBadConfig);
  JobRequest deep = streaming_request("t", 2, path, 4);
  deep.queue_depth = 2;
  EXPECT_EQ(service.submit(deep).rejected, RejectReason::kBadConfig);
  deep.queue_depth = 1000;
  EXPECT_EQ(service.submit(deep).rejected, RejectReason::kBadConfig);

  fs::remove(path);
  fs::remove(path + ".hdr");
}

/// The kAdaptive-vs-kFirstFit preference scenario: a long `base` job holds
/// most of the memory budget (pressure on) while a short `blocker` holds
/// every remaining worker, so a Full job and a Streaming job queue up
/// behind it. When the blocker finishes, exactly one of the two fits the
/// remaining budget at a time — which one goes first is pure admission
/// policy.
struct PressureScenario {
  SimTime stream_start = -1;
  SimTime full_start = -1;
  bool all_completed = false;
};

PressureScenario run_pressure_scenario(AdmissionPolicy policy,
                                       const hsi::Scene& base_scene,
                                       const hsi::Scene& full_scene,
                                       const std::string& stream_path) {
  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  cfg.execution_threads = 2;
  cfg.admission = policy;
  cfg.host_memory_budget = 90000;
  FusionService service(cfg);

  JobRequest base;  // 50000 B resident, 1 worker, long (big shape)
  base.tenant = "base";
  base.config = cost_only_job(1);
  base.config.mode = core::ExecutionMode::kFull;
  base.config.shape = {50, 50, 5};
  base.config.cube = &base_scene.cube;
  base.arrival = 0;
  EXPECT_TRUE(service.submit(base).accepted());

  JobRequest blocker;  // no host memory, every remaining worker, short
  blocker.tenant = "blocker";
  blocker.config = cost_only_job(3);
  blocker.config.shape = {8, 8, 2};
  blocker.arrival = 0;
  EXPECT_TRUE(service.submit(blocker).accepted());

  JobRequest full;  // 35000 B — fits free budget alone, not with stream
  full.tenant = "full";
  full.config = cost_only_job(2);
  full.config.mode = core::ExecutionMode::kFull;
  full.config.shape = {35, 25, 10};
  full.config.cube = &full_scene.cube;
  full.arrival = 1;  // queued before the stream job (FIFO order)
  const SubmitResult full_submit = service.submit(full);
  EXPECT_TRUE(full_submit.accepted());

  JobRequest stream = streaming_request("stream", 2, stream_path, 4);
  stream.queue_depth = 3;  // demand 3 x 4 x 16 x 8 x 4 = 6144 B
  stream.arrival = 2;
  const SubmitResult stream_submit = service.submit(stream);
  EXPECT_TRUE(stream_submit.accepted());

  const ServiceReport report = service.run();
  PressureScenario out;
  out.all_completed = report.all_completed;
  out.stream_start = record_of(report, stream_submit.id).start_time;
  out.full_start = record_of(report, full_submit.id).start_time;
  return out;
}

TEST(ServiceTest, AdaptivePolicyPrefersStreamingUnderMemoryPressure) {
  hsi::SceneConfig base_cfg;  // 50 x 50 x 5 floats = 50000 B
  base_cfg.width = 50;
  base_cfg.height = 50;
  base_cfg.bands = 5;
  const hsi::Scene base_scene = hsi::generate_scene(base_cfg);
  hsi::SceneConfig full_cfg;  // 35 x 25 x 10 floats = 35000 B
  full_cfg.width = 35;
  full_cfg.height = 25;
  full_cfg.bands = 10;
  const hsi::Scene full_scene = hsi::generate_scene(full_cfg);
  hsi::SceneConfig stream_cfg;
  stream_cfg.width = 16;
  stream_cfg.height = 16;
  stream_cfg.bands = 8;
  const hsi::Scene stream_scene = hsi::generate_scene(stream_cfg);
  const std::string path =
      write_scene_file(stream_scene, "rif_svc_adaptive.dat");

  // kFirstFit honors FIFO: the Full job (earlier arrival) is admitted at
  // the blocker's completion and the streamed job waits for the base job.
  const PressureScenario first_fit = run_pressure_scenario(
      AdmissionPolicy::kFirstFit, base_scene, full_scene, path);
  ASSERT_TRUE(first_fit.all_completed);
  EXPECT_LT(first_fit.full_start, first_fit.stream_start);

  // kAdaptive under pressure (free 40000 <= 90000/2) jumps the streamed
  // job — a sliver of the budget — over the queued Full job.
  const PressureScenario adaptive = run_pressure_scenario(
      AdmissionPolicy::kAdaptive, base_scene, full_scene, path);
  ASSERT_TRUE(adaptive.all_completed);
  EXPECT_LT(adaptive.stream_start, adaptive.full_start);

  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(ServiceTest, CounterOfferConvertsOverBudgetFullToStreaming) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 24;
  scene_cfg.height = 24;
  scene_cfg.bands = 8;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string path = write_scene_file(scene, "rif_svc_offer.dat");

  const auto full_with_file = [&] {
    JobRequest r;
    r.tenant = "t";
    r.config = cost_only_job(2);
    r.config.mode = core::ExecutionMode::kFull;
    r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
    r.config.cube = &scene.cube;
    r.cube_path = path;  // consent to the counter-offer
    r.chunk_lines = 4;
    r.queue_depth = 3;
    return r;
  };

  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  cfg.execution_threads = 2;
  cfg.host_memory_budget = scene.cube.bytes() / 2;

  {
    // Static policies still reject outright...
    FusionService service(cfg);
    const auto r = service.submit(full_with_file());
    EXPECT_EQ(r.rejected, RejectReason::kOverMemoryBudget);
    EXPECT_FALSE(r.counter_offered);
  }
  {
    // ...and so does kAdaptive when the tenant attached no file.
    ServiceConfig adaptive = cfg;
    adaptive.admission = AdmissionPolicy::kAdaptive;
    FusionService service(adaptive);
    JobRequest no_file = full_with_file();
    no_file.cube_path.clear();
    EXPECT_EQ(service.submit(no_file).rejected,
              RejectReason::kOverMemoryBudget);
  }
  {
    // kAdaptive + cube_path: admitted as Streaming, runs to completion in
    // bounded memory, and the conversion is flagged end to end.
    ServiceConfig adaptive = cfg;
    adaptive.admission = AdmissionPolicy::kAdaptive;
    FusionService service(adaptive);
    const SubmitResult submit = service.submit(full_with_file());
    ASSERT_TRUE(submit.accepted());
    EXPECT_TRUE(submit.counter_offered);

    const ServiceReport report = service.run();
    ASSERT_TRUE(report.all_completed);
    const JobRecord& rec = record_of(report, submit.id);
    EXPECT_TRUE(rec.completed);
    EXPECT_TRUE(rec.counter_offered);
    EXPECT_EQ(rec.mode, JobMode::kStreaming);
    EXPECT_EQ(rec.memory_demand, 3ull * 4 * 24 * 8 * sizeof(float));
    EXPECT_LT(rec.memory_demand, scene.cube.bytes());
    EXPECT_EQ(rec.outcome.composite.data.size(),
              static_cast<std::size_t>(scene.cube.pixel_count()) * 3);
    EXPECT_GT(rec.stream.chunks, 0);
  }
  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(ServiceTest, AutotunedStreamingJobStaysWithinAdmittedDemand) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 32;
  scene_cfg.height = 96;
  scene_cfg.bands = 8;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string path = write_scene_file(scene, "rif_svc_tuned.dat");

  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  cfg.execution_threads = 2;
  FusionService service(cfg);
  JobRequest r = streaming_request("tuner", 2, path, 8);
  r.queue_depth = 4;
  r.autotune = true;
  const auto submit = service.submit(r);
  ASSERT_TRUE(submit.accepted());
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);

  const JobRecord& rec = record_of(report, submit.id);
  ASSERT_TRUE(rec.completed);
  // The tuner's clamp is the ADMITTED demand: however it reshaped the
  // chunks-vs-depth split, the run never outgrew what admission budgeted.
  EXPECT_GT(rec.stream.peak_buffer_bytes, 0u);
  EXPECT_LE(rec.stream.peak_buffer_bytes, rec.memory_demand);
  EXPECT_EQ(rec.outcome.composite.data.size(),
            static_cast<std::size_t>(scene.cube.pixel_count()) * 3);

  fs::remove(path);
  fs::remove(path + ".hdr");
}

TEST(ServiceTest, ReportCarriesRegistryBackedMetricsJson) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 32;
  scene_cfg.height = 32;
  scene_cfg.bands = 8;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string path = write_scene_file(scene, "rif_svc_json.dat");

  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  cfg.execution_threads = 2;
  FusionService service(cfg);
  ASSERT_TRUE(service.submit(streaming_request("ana", 2, path, 8)).accepted());
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);

  // One snapshot carries the whole control plane: admission counters,
  // per-tenant latency, host-pool usage, and the merged streamed series
  // that StreamingTotals is a view of.
  const std::string& json = report.metrics_json;
  EXPECT_NE(json.find("\"service.submitted\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"service.completed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tenant.ana.latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"stream.chunk_read_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"host_pool.tasks_executed\""), std::string::npos);
  EXPECT_EQ(report.streaming.jobs, 1);
  EXPECT_EQ(report.streaming.bytes_read,
            service.metrics().counter_value("stream.bytes_read"));

  fs::remove(path);
  fs::remove(path + ".hdr");
}

// --- Observability: scheduler pressure signal, spans, scraped timeline -------

TEST(ServiceTest, SchedulerPressureSignalPrefersStreamingBeforeBudgetDrains) {
  // Free memory is still ABOVE the half-way line, so the static free/total
  // signal alone says "no pressure" — only the scraper-published demand
  // signal (queued demand outrunning the remaining budget) can flip
  // kAdaptive into its streaming preference early.
  JobQueue queue;
  queue.push(0, Priority::kNormal, 2, 60000, /*streaming=*/false);
  queue.push(1, Priority::kNormal, 2, 5000, /*streaming=*/true);
  const std::uint64_t free_memory = 70000;
  const std::uint64_t total_memory = 100000;

  const Scheduler adaptive(AdmissionPolicy::kAdaptive);
  EXPECT_EQ(adaptive.pick(queue, 4, free_memory, total_memory, 0.0), 0);
  EXPECT_EQ(adaptive.pick(queue, 4, free_memory, total_memory, 1.5), 1);
  // The static policies ignore the signal entirely.
  const Scheduler first_fit(AdmissionPolicy::kFirstFit);
  EXPECT_EQ(first_fit.pick(queue, 4, free_memory, total_memory, 1.5), 0);
}

TEST(ServiceTest, TracedRunExportsBalancedLifecycleSpans) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 32;
  scene_cfg.height = 32;
  scene_cfg.bands = 8;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string path = write_scene_file(scene, "rif_svc_traced.dat");

  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  tracer.set_enabled(true);
  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  cfg.execution_threads = 2;
  FusionService service(cfg);
  ASSERT_TRUE(service.submit(streaming_request("ana", 2, path, 8)).accepted());
  ASSERT_TRUE(service.submit(streaming_request("bo", 2, path, 8)).accepted());
  const ServiceReport report = service.run();
  tracer.set_enabled(false);
  ASSERT_TRUE(report.all_completed);

  const std::string trace_path =
      (fs::temp_directory_path() / "rif_svc_trace.json").string();
  ASSERT_TRUE(obs::write_chrome_trace(trace_path));
  const obs::TraceCheckResult check = obs::check_chrome_trace_file(trace_path);
  EXPECT_TRUE(check.ok) << check.error;
  // One lifecycle lane per job on the virtual timeline, one host-execution
  // span per job on the wall timeline, per-chunk stages underneath.
  EXPECT_EQ(check.span_counts.at("submit"), 2u);
  EXPECT_EQ(check.span_counts.at("queue_wait"), 2u);
  EXPECT_EQ(check.span_counts.at("execute"), 2u);
  EXPECT_EQ(check.span_counts.at("host_execute"), 2u);
  EXPECT_EQ(check.span_counts.at("service_run"), 1u);
  EXPECT_GE(check.span_counts.at("admission"), 1u);
  EXPECT_GT(check.span_counts.at("chunk_read"), 0u);
  EXPECT_GT(check.span_counts.at("chunk_screen"), 0u);
  EXPECT_GT(check.span_counts.at("chunk_transform"), 0u);

  fs::remove(trace_path);
  fs::remove(path);
  fs::remove(path + ".hdr");
  tracer.clear();
}

TEST(ServiceTest, ScrapedTimelineAndPressureHistoryLandInReport) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 32;
  scene_cfg.height = 32;
  scene_cfg.bands = 8;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string path = write_scene_file(scene, "rif_svc_timeline.dat");

  // Budget fits ONE streamed working set (4 x 8-line chunks = 32768 B), so
  // the second job queues and dispatch's pressured-episode scrape puts a
  // nonzero admission-pressure sample on the timeline deterministically.
  ServiceConfig cfg;
  cfg.worker_nodes = 4;
  cfg.execution_threads = 2;
  cfg.admission = AdmissionPolicy::kAdaptive;
  cfg.host_memory_budget = 40000;
  FusionService service(cfg);
  ASSERT_TRUE(service.submit(streaming_request("ana", 2, path, 8)).accepted());
  ASSERT_TRUE(service.submit(streaming_request("ana", 2, path, 8)).accepted());
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);

  // The embedded timeline parses and carries the guaranteed phase-boundary
  // scrapes (start, post-sim, stop) at minimum.
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::parse_json(report.metrics_timeline_json, doc, err)) << err;
  const obs::JsonValue* samples = doc.find("samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_GE(samples->array.size(), 3u);
  // The pressure history mirrors the samples and saw the queued episode.
  ASSERT_EQ(report.admission_pressure.size(), samples->array.size());
  double max_pressure = 0.0;
  for (const auto& p : report.admission_pressure) {
    max_pressure = std::max(max_pressure, p.pressure);
  }
  EXPECT_GT(max_pressure, 0.0);

  // queue_wait_seconds (span-sourced when tracing, timestamps here) agrees
  // with wait_seconds per job and with the tenant ledger's wait stats.
  double wait_sum = 0.0;
  double max_wait = 0.0;
  int completed = 0;
  for (const auto& rec : report.jobs) {
    if (!rec.completed) continue;
    EXPECT_NEAR(rec.queue_wait_seconds, rec.wait_seconds, 1e-9);
    wait_sum += rec.queue_wait_seconds;
    max_wait = std::max(max_wait, rec.queue_wait_seconds);
    ++completed;
  }
  ASSERT_EQ(completed, 2);
  EXPECT_GT(max_wait, 0.0);  // the second job really queued
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_NEAR(report.tenants[0].queue_wait.mean(), wait_sum / completed,
              1e-9);

  fs::remove(path);
  fs::remove(path + ".hdr");
}

// --- Remote worker plane ----------------------------------------------------

TEST(ServiceTest, RemoteWorkersExecuteFullJobsBitExact) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 32;
  scene_cfg.height = 32;
  scene_cfg.bands = 12;
  scene_cfg.seed = 33;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);

  // One host node + two remote workers: a 3-worker job can only run by
  // leasing remote capacity, so its pixels travel the socket protocol.
  ServiceConfig cfg;
  cfg.worker_nodes = 1;
  cfg.execution_threads = 2;
  cfg.remote_workers = 2;
  cfg.remote_spawn_local = true;
  FusionService service(cfg);

  JobRequest r;
  r.tenant = "edge";
  r.config = cost_only_job(/*workers=*/3);
  r.config.mode = core::ExecutionMode::kFull;
  r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
  r.config.cube = &scene.cube;
  const JobId id = service.submit(std::move(r)).id;
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);
  EXPECT_EQ(report.remote_workers_attached, 2);
  EXPECT_EQ(report.remote_jobs, 1);
  EXPECT_EQ(report.remote_fallbacks, 0);
  EXPECT_EQ(report.remote_disconnects, 0);

  const JobRecord& rec = record_of(report, id);
  ASSERT_TRUE(rec.completed);
  EXPECT_TRUE(rec.remote_executed);
  EXPECT_EQ(rec.remote_workers, 2);  // covariance shards = live remote workers
  EXPECT_GT(rec.host_seconds, 0.0);

  // Byte-identical to the two-pass shared-memory engine with the same
  // shard/tile counts — the same oracle chain remote_exec_test pins.
  core::ParallelPctConfig expect_cfg;
  expect_cfg.threads = rec.remote_workers;
  expect_cfg.tiles = rec.workers * 2;  // tiles_per_worker = 2
  const core::PctResult expected = core::fuse_parallel(scene.cube, expect_cfg);
  EXPECT_EQ(rec.outcome.composite.data, expected.composite.data);
  EXPECT_EQ(rec.outcome.unique_set_size, expected.unique_set_size);
  EXPECT_EQ(rec.outcome.eigenvalues, expected.eigenvalues);
}

TEST(ServiceTest, NoRemoteWorkersArriveDegradesToHostPool) {
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 16;
  scene_cfg.height = 16;
  scene_cfg.bands = 8;
  scene_cfg.seed = 34;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);

  // The service expects two remote workers on an ephemeral port; none
  // connect before the (short) wait deadline. A job that fits the host
  // pool must still complete there, with zero remote activity reported.
  ServiceConfig cfg;
  cfg.worker_nodes = 2;
  cfg.execution_threads = 2;
  cfg.remote_workers = 2;
  cfg.remote_wait_seconds = 0.1;
  FusionService service(cfg);

  JobRequest r;
  r.tenant = "hosty";
  r.config = cost_only_job(/*workers=*/2);
  r.config.mode = core::ExecutionMode::kFull;
  r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
  r.config.cube = &scene.cube;
  const JobId id = service.submit(std::move(r)).id;
  const ServiceReport report = service.run();
  ASSERT_TRUE(report.all_completed);
  EXPECT_EQ(report.remote_workers_attached, 0);
  EXPECT_EQ(report.remote_jobs, 0);

  const JobRecord& rec = record_of(report, id);
  ASSERT_TRUE(rec.completed);
  EXPECT_FALSE(rec.remote_executed);
  core::ParallelPctConfig expect_cfg;
  expect_cfg.threads = cfg.execution_threads;
  expect_cfg.tiles = rec.workers * 2;
  const core::PctResult expected =
      core::fuse_parallel_fused(scene.cube, expect_cfg);
  EXPECT_EQ(rec.outcome.composite.data, expected.composite.data);
}

}  // namespace
}  // namespace rif::service
