#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/distributed/messages.h"
#include "linalg/stats.h"
#include "support/serialize.h"

namespace rif::core {
namespace {

// --- Wire codec round-trips ----------------------------------------------

TEST(MessagesTest, TileAssignRoundTrip) {
  TileAssignMsg msg;
  msg.tile = {3, 40, 10, 320, 105};
  msg.data = {1.0f, 2.0f, 3.0f};
  const scp::Message wire = msg.encode(12345);
  EXPECT_EQ(wire.type, kTileAssign);
  EXPECT_EQ(wire.declared_bytes, 12345u);
  const TileAssignMsg back = TileAssignMsg::decode(wire);
  EXPECT_EQ(back.tile.index, 3);
  EXPECT_EQ(back.tile.y0, 40);
  EXPECT_EQ(back.tile.rows, 10);
  EXPECT_EQ(back.data, msg.data);
}

TEST(MessagesTest, ScreenResultRoundTrip) {
  ScreenResultMsg msg;
  msg.tile = {1, 0, 5, 64, 16};
  msg.unique_count = 321;
  msg.comparisons = 99999;
  msg.vectors = {0.5f, 0.25f};
  const ScreenResultMsg back = ScreenResultMsg::decode(msg.encode(0));
  EXPECT_EQ(back.unique_count, 321u);
  EXPECT_EQ(back.comparisons, 99999u);
  EXPECT_EQ(back.vectors, msg.vectors);
}

TEST(MessagesTest, CovShardRoundTrip) {
  CovShardMsg msg;
  msg.shard_index = 5;
  msg.shard_count = 17;
  msg.vectors = {1.0f};
  msg.mean = {0.25, 0.75};
  const CovShardMsg back = CovShardMsg::decode(msg.encode(64));
  EXPECT_EQ(back.shard_index, 5u);
  EXPECT_EQ(back.shard_count, 17u);
  EXPECT_EQ(back.mean, msg.mean);
}

TEST(MessagesTest, CovSumRoundTrip) {
  CovSumMsg msg;
  msg.shard_index = 9;
  msg.accumulator = {1, 2, 3, 255};
  const CovSumMsg back = CovSumMsg::decode(msg.encode(0));
  EXPECT_EQ(back.shard_index, 9u);
  EXPECT_EQ(back.accumulator, msg.accumulator);
}

TEST(MessagesTest, TransformRoundTrip) {
  TransformMsg msg;
  msg.components = 3;
  msg.bands = 4;
  msg.matrix = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  msg.mean = {0.1, 0.2, 0.3, 0.4};
  msg.scale_mean = {0, 0, 0};
  msg.scale_gain = {1, 2, 3};
  const TransformMsg back = TransformMsg::decode(msg.encode(0));
  EXPECT_EQ(back.components, 3);
  EXPECT_EQ(back.bands, 4);
  EXPECT_EQ(back.matrix, msg.matrix);
  EXPECT_EQ(back.scale_gain, msg.scale_gain);
}

TEST(MessagesTest, ColorTileRoundTrip) {
  ColorTileMsg msg;
  msg.tile = {7, 8, 2, 4, 16};
  msg.rgb = {255, 0, 128, 1, 2, 3};
  const ColorTileMsg back = ColorTileMsg::decode(msg.encode(0));
  EXPECT_EQ(back.tile.index, 7);
  EXPECT_EQ(back.rgb, msg.rgb);
}

TEST(MessagesTest, WireTileConversion) {
  const hsi::Tile tile{5, 100, 20, 320, 105};
  const WireTile wire = WireTile::from(tile);
  const hsi::Tile back = wire.to_tile();
  EXPECT_EQ(back.index, 5);
  EXPECT_EQ(back.y0, 100);
  EXPECT_EQ(back.rows, 20);
  EXPECT_EQ(back.pixels(), tile.pixels());
  EXPECT_EQ(wire.pixels(), tile.pixels());
}

// --- Malformed wire payloads ---------------------------------------------
//
// Accumulator decode() runs on bytes received from other nodes; a hostile
// or corrupt payload must die on a clean bounds check, never read out of
// bounds or size containers from garbage.

TEST(MalformedPayloadTest, TruncatedMeanAccumulatorDies) {
  auto bytes = [] {
    linalg::MeanAccumulator acc(3);
    acc.add(std::vector<float>{1.0f, 2.0f, 3.0f});
    return acc.encode();
  }();
  bytes.resize(bytes.size() - 5);  // cut into the sums vector
  EXPECT_DEATH((void)linalg::MeanAccumulator::decode(bytes), "truncated");
}

TEST(MalformedPayloadTest, OverstatedVectorLengthDies) {
  // Claimed element count far beyond the buffer: the length sanity check
  // must fire even when count * sizeof(T) wraps 64-bit arithmetic.
  Writer w;
  w.put<std::uint64_t>(7);  // count
  w.put<std::uint64_t>(0xFFFFFFFFFFFFFFF0ull);  // sums length (wraps * 8)
  auto bytes = std::move(w).take();
  EXPECT_DEATH((void)linalg::MeanAccumulator::decode(bytes), "truncated");
}

TEST(MalformedPayloadTest, ZeroDimsMeanAccumulatorDies) {
  Writer w;
  w.put<std::uint64_t>(1);               // count
  w.put_vector(std::vector<double>{});   // zero dims
  auto bytes = std::move(w).take();
  EXPECT_DEATH((void)linalg::MeanAccumulator::decode(bytes), "zero dims");
}

TEST(MalformedPayloadTest, NegativeCovarianceDimsDies) {
  Writer w;
  w.put<std::int32_t>(-3);
  w.put<std::uint64_t>(1);
  w.put_vector(std::vector<double>{1.0, 2.0, 3.0});
  w.put_vector(std::vector<double>{0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  auto bytes = std::move(w).take();
  EXPECT_DEATH((void)linalg::CovarianceAccumulator::decode(bytes),
               "malformed covariance accumulator");
}

TEST(MalformedPayloadTest, MismatchedCovarianceDimsDies) {
  Writer w;
  w.put<std::int32_t>(4);  // dims disagrees with the 3-long mean below
  w.put<std::uint64_t>(1);
  w.put_vector(std::vector<double>{1.0, 2.0, 3.0});
  w.put_vector(std::vector<double>(10, 0.0));
  auto bytes = std::move(w).take();
  EXPECT_DEATH((void)linalg::CovarianceAccumulator::decode(bytes),
               "malformed covariance accumulator");
}

TEST(MalformedPayloadTest, ShortCovarianceTriangleDies) {
  Writer w;
  w.put<std::int32_t>(3);
  w.put<std::uint64_t>(2);
  w.put_vector(std::vector<double>{1.0, 2.0, 3.0});
  w.put_vector(std::vector<double>{0.0, 0.0});  // triangle needs 6
  auto bytes = std::move(w).take();
  EXPECT_DEATH((void)linalg::CovarianceAccumulator::decode(bytes),
               "malformed covariance accumulator");
}

TEST(MalformedPayloadTest, TruncatedStringDies) {
  Writer w;
  w.put<std::uint64_t>(100);  // string length beyond the buffer
  auto bytes = std::move(w).take();
  Reader r(bytes);
  EXPECT_DEATH((void)r.get_string(), "truncated");
}

// Every protocol decoder must die on a clean check for BOTH failure
// directions: a payload cut short mid-field and trailing garbage past the
// last field — bytes a real socket peer could hand us. The fatal decode()
// wrappers report both as a malformed message (try_decode is the
// non-aborting path the socket plane uses); the envelope and worker-plane
// body decoders get the same treatment in transport_test.
template <typename Msg, typename DecodeFn>
void expect_decode_bounds_checked(const Msg& msg, DecodeFn decode) {
  const scp::Message wire = msg.encode(0);
  ASSERT_GT(wire.payload.size(), 3u);

  scp::Message truncated = wire;
  truncated.payload.resize(truncated.payload.size() - 3);
  EXPECT_DEATH((void)decode(truncated), "malformed");

  scp::Message oversized = wire;
  oversized.payload.push_back(0xAB);
  EXPECT_DEATH((void)decode(oversized), "malformed");
}

TEST(MalformedPayloadTest, TileAssignBoundsChecked) {
  TileAssignMsg msg;
  msg.tile = {3, 40, 10, 320, 105};
  msg.data = {1.0f, 2.0f, 3.0f};
  expect_decode_bounds_checked(
      msg, [](const scp::Message& m) { return TileAssignMsg::decode(m); });
}

TEST(MalformedPayloadTest, ScreenResultBoundsChecked) {
  ScreenResultMsg msg;
  msg.tile = {1, 0, 5, 64, 16};
  msg.unique_count = 9;
  msg.vectors = {0.5f, 0.25f};
  expect_decode_bounds_checked(
      msg, [](const scp::Message& m) { return ScreenResultMsg::decode(m); });
}

TEST(MalformedPayloadTest, CovShardBoundsChecked) {
  CovShardMsg msg;
  msg.shard_count = 2;
  msg.vectors = {1.0f, 2.0f};
  msg.mean = {0.5, 0.5};
  expect_decode_bounds_checked(
      msg, [](const scp::Message& m) { return CovShardMsg::decode(m); });
}

TEST(MalformedPayloadTest, CovSumBoundsChecked) {
  CovSumMsg msg;
  msg.accumulator = {1, 2, 3, 4, 5, 6, 7, 8};
  expect_decode_bounds_checked(
      msg, [](const scp::Message& m) { return CovSumMsg::decode(m); });
}

TEST(MalformedPayloadTest, TransformBoundsChecked) {
  TransformMsg msg;
  msg.components = 1;
  msg.bands = 2;
  msg.matrix = {1.0, 2.0};
  msg.mean = {0.1, 0.2};
  msg.scale_mean = {0.0};
  msg.scale_gain = {1.0};
  expect_decode_bounds_checked(
      msg, [](const scp::Message& m) { return TransformMsg::decode(m); });
}

TEST(MalformedPayloadTest, ColorTileBoundsChecked) {
  ColorTileMsg msg;
  msg.tile = {7, 8, 2, 4, 16};
  msg.rgb = {255, 0, 128, 1, 2, 3};
  expect_decode_bounds_checked(
      msg, [](const scp::Message& m) { return ColorTileMsg::decode(m); });
}

TEST(MessagesTest, DeclaredBytesDefaultsToPayload) {
  scp::Message m{kRequestWork, {1, 2, 3, 4}, 0};
  EXPECT_EQ(m.wire_bytes(), 64u + 4u);  // header + payload
  scp::Message big{kTileAssign, {1}, 1000000};
  EXPECT_EQ(big.wire_bytes(), 64u + 1000000u);
}

// --- Cost model properties --------------------------------------------------

class CostModelTest : public ::testing::Test {
 protected:
  CostModelParams params_;
  CostModel model_{params_, 105, 3};
};

TEST_F(CostModelTest, TileUniqueSaturates) {
  EXPECT_LT(model_.tile_unique_size(1), model_.tile_unique_size(100));
  EXPECT_LT(model_.tile_unique_size(100), model_.tile_unique_size(10000));
  EXPECT_LE(model_.tile_unique_size(1 << 26),
            params_.tile_unique_saturation * 1.0001);
  EXPECT_NEAR(model_.tile_unique_size(1 << 26),
              params_.tile_unique_saturation,
              1e-6 * params_.tile_unique_saturation);
}

TEST_F(CostModelTest, ScreenFlopsSuperlinearInPixelsUntilSaturation) {
  // Below saturation, doubling pixels more than doubles work (the set is
  // still growing); far above, it is linear.
  const double small = model_.screen_flops(50);
  const double twice = model_.screen_flops(100);
  EXPECT_GT(twice, 2.0 * small);
  const double big = model_.screen_flops(100000);
  const double bigger = model_.screen_flops(200000);
  EXPECT_NEAR(bigger / big, 2.0, 0.05);
}

TEST_F(CostModelTest, StepFlopsPositiveAndScaled) {
  EXPECT_GT(model_.merge_flops(100), 0.0);
  EXPECT_GT(model_.mean_flops(), 0.0);
  EXPECT_GT(model_.cov_flops(10), 0.0);
  EXPECT_GT(model_.eigen_flops(), 0.0);
  EXPECT_DOUBLE_EQ(model_.transform_flops(10) / 10.0,
                   model_.transform_flops(1));
  EXPECT_DOUBLE_EQ(model_.cov_flops(20), 2.0 * model_.cov_flops(10));
}

TEST_F(CostModelTest, MergeScaleReducesCharge) {
  CostModelParams scaled = params_;
  scaled.merge_cost_scale = 0.25;
  CostModel cheap(scaled, 105, 3);
  EXPECT_DOUBLE_EQ(cheap.merge_flops(100), 0.25 * model_.merge_flops(100));
}

TEST_F(CostModelTest, WireSizesMatchShapes) {
  EXPECT_EQ(model_.tile_bytes(100), 100u * 105 * 4);
  EXPECT_EQ(model_.unique_vectors_bytes(10.0), 10u * 105 * 4);
  EXPECT_EQ(model_.cov_sum_bytes(), 105u * 106 / 2 * 8 + 16);
  EXPECT_EQ(model_.color_tile_bytes(100), 100u * 3 + 32);
  EXPECT_GT(model_.transform_bytes(), 3u * 105 * 8);
}

TEST_F(CostModelTest, EigenFlopsCubicInBands) {
  CostModel small(params_, 32, 3);
  CostModel large(params_, 128, 3);
  // 4x bands -> ~64x eigen work.
  EXPECT_GT(large.eigen_flops() / small.eigen_flops(), 40.0);
  EXPECT_LT(large.eigen_flops() / small.eigen_flops(), 90.0);
}

TEST_F(CostModelTest, FlopsPerComparisonTracksBands) {
  CostModel narrow(params_, 10, 3);
  CostModel wide(params_, 210, 3);
  EXPECT_GT(wide.flops_per_comparison(), narrow.flops_per_comparison());
  EXPECT_NEAR(wide.flops_per_comparison(), 2.0 * 210 + 10, 1e-12);
}

}  // namespace
}  // namespace rif::core
