#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "support/rng.h"
#include "support/serialize.h"
#include "support/table.h"
#include "support/time.h"

namespace rif {
namespace {

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformU64Bounded) {
  Rng rng(9);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.uniform_u64(n), n);
    }
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform_u64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng parent(42);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next() == c2.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// --- Serialization ---------------------------------------------------------

TEST(SerializeTest, ScalarRoundTrip) {
  Writer w;
  w.put<std::int32_t>(-42);
  w.put<double>(3.25);
  w.put<std::uint64_t>(1ull << 60);
  const auto buf = std::move(w).take();

  Reader r(buf);
  EXPECT_EQ(r.get<std::int32_t>(), -42);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::uint64_t>(), 1ull << 60);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, StringAndVectorRoundTrip) {
  Writer w;
  w.put_string("hello fusion");
  w.put_vector(std::vector<float>{1.5f, -2.5f, 0.0f});
  w.put_string("");
  const auto buf = std::move(w).take();

  Reader r(buf);
  EXPECT_EQ(r.get_string(), "hello fusion");
  const auto v = r.get_vector<float>();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], -2.5f);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, TruncatedBufferAborts) {
  Writer w;
  w.put<std::uint64_t>(100);  // vector length without payload
  const auto buf = std::move(w).take();
  Reader r(buf);
  EXPECT_DEATH((void)r.get_vector<double>(), "truncated");
}

TEST(SerializeTest, RemainingTracksPosition) {
  Writer w;
  w.put<std::uint32_t>(7);
  w.put<std::uint32_t>(8);
  const auto buf = std::move(w).take();
  Reader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

// --- Time ------------------------------------------------------------------

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(from_seconds(1.0), 1000000000);
  EXPECT_EQ(from_millis(1.0), 1000000);
  EXPECT_EQ(from_micros(1.0), 1000);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_millis(from_millis(0.25)), 0.25);
}

// --- Table -----------------------------------------------------------------

TEST(TableTest, PrintsAlignedRows) {
  Table t({"P", "time"});
  t.add_row({"1", "100.0"});
  t.add_row({"16", "7.5"});
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  t.print(tmp);
  std::rewind(tmp);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof buf, tmp), nullptr);
  EXPECT_NE(std::string(buf).find("P"), std::string::npos);
  std::fclose(tmp);
}

TEST(TableTest, StrfFormats) {
  EXPECT_EQ(strf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strf("%d/%d", 3, 4), "3/4");
}

}  // namespace
}  // namespace rif
