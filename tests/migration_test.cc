// Tests for proactive replica mobility (Runtime::migrate / evacuate_node).
#include <gtest/gtest.h>

#include <memory>

#include "cluster/failure_injector.h"
#include "net/network.h"
#include "scp/runtime.h"
#include "sim/simulation.h"
#include "support/serialize.h"

namespace rif::scp {
namespace {

constexpr std::uint32_t kAdd = 1;
constexpr std::uint32_t kReport = 2;
constexpr std::uint32_t kSum = 3;

RuntimeConfig fast_resilient() {
  RuntimeConfig c;
  c.resilient = true;
  c.heartbeat_period = from_millis(20);
  c.failure_timeout = from_millis(80);
  c.retransmit_timeout = from_millis(60);
  c.state_request_timeout = from_millis(150);
  return c;
}

Message int_message(std::uint32_t type, std::int64_t value) {
  Writer w;
  w.put<std::int64_t>(value);
  return Message{type, std::move(w).take(), 0};
}

std::int64_t int_payload(const Message& m) {
  Reader r(m.payload);
  return r.get<std::int64_t>();
}

class AccumulatorActor final : public Actor {
 public:
  explicit AccumulatorActor(double flops = 2e6) : flops_(flops) {}
  void on_message(ActorContext& ctx, ThreadId from,
                  const Message& msg) override {
    if (msg.type == kAdd) {
      const std::int64_t v = int_payload(msg);
      ctx.compute(flops_, [this, v] { sum_ += v; });
    } else if (msg.type == kReport) {
      ctx.send(from, int_message(kSum, sum_));
    }
  }
  std::vector<std::uint8_t> snapshot_state() const override {
    Writer w;
    w.put<std::int64_t>(sum_);
    return std::move(w).take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    Reader r(state);
    sum_ = r.get<std::int64_t>();
  }

 private:
  double flops_;
  std::int64_t sum_ = 0;
};

class StreamCoordinator final : public Actor {
 public:
  StreamCoordinator(ThreadId target, int count, std::int64_t* result)
      : target_(target), count_(count), result_(result) {}
  void on_start(ActorContext& ctx) override {
    for (int i = 1; i <= count_; ++i) ctx.send(target_, int_message(kAdd, i));
    ctx.send(target_, int_message(kReport, 0));
  }
  void on_message(ActorContext& ctx, ThreadId /*from*/,
                  const Message& msg) override {
    if (msg.type == kSum) {
      *result_ = int_payload(msg);
      ctx.finish();
      ctx.shutdown_runtime();
    }
  }

 private:
  ThreadId target_;
  int count_;
  std::int64_t* result_;
};

struct Harness {
  sim::Simulation sim;
  cluster::Cluster cluster{sim};
  std::unique_ptr<net::LanNetwork> net;
  std::unique_ptr<Runtime> runtime;

  explicit Harness(int nodes, RuntimeConfig config = fast_resilient()) {
    cluster::NodeConfig nc;
    nc.flops_per_second = 1e8;
    cluster.add_nodes(nodes, nc);
    net = std::make_unique<net::LanNetwork>(cluster);
    runtime = std::make_unique<Runtime>(cluster, *net, config);
  }
};

/// Coordinator(0)@node0, replicated accumulator(1)@{1,2}; streams `count`
/// messages. Returns the runtime for inspection.
struct Scenario {
  Harness h;
  std::int64_t result = -1;
  static constexpr ThreadId kAcc = 1;

  explicit Scenario(int nodes, int count = 40) : h(nodes) {
    h.runtime->spawn("coord", [this, count] {
      return std::make_unique<StreamCoordinator>(kAcc, count, &result);
    }, 1, {0});
    h.runtime->spawn("acc", [] { return std::make_unique<AccumulatorActor>(); },
                     2, {1, 2});
  }
};

TEST(MigrationTest, MidStreamMigrationPreservesResult) {
  Scenario s(4);
  s.h.runtime->start();
  // Let the stream get going, then move slot 0 from node 1 to node 3.
  s.h.sim.run_until(from_millis(200));
  ASSERT_TRUE(s.h.runtime->migrate(Scenario::kAcc, 0, 3));
  ASSERT_TRUE(s.h.runtime->run(from_seconds(120)));
  EXPECT_EQ(s.result, 820);
  EXPECT_EQ(s.h.runtime->stats().replicas_migrated, 1u);
  EXPECT_EQ(s.h.runtime->stats().failures_detected, 0u);

  const auto members = s.h.runtime->members_of(Scenario::kAcc);
  EXPECT_TRUE((members[0].node == 3 && members[1].node == 2));
  EXPECT_EQ(members[0].incarnation, 1u);
}

TEST(MigrationTest, EvacuationBeatsTheStrike) {
  // Attack assessment senses node 1 is about to be hit; evacuate first.
  Scenario s(4);
  s.h.sim.schedule_at(from_millis(150), [&] {
    EXPECT_EQ(s.h.runtime->evacuate_node(1), 1);
  });
  cluster::FailureInjector injector(s.h.cluster);
  injector.schedule_crash(from_millis(900), 1);  // strike lands on an empty host
  s.h.runtime->start();
  ASSERT_TRUE(s.h.runtime->run(from_seconds(120)));
  EXPECT_EQ(s.result, 820);
  EXPECT_EQ(s.h.runtime->stats().replicas_migrated, 1u);
  // The evacuated host died without taking any replica with it.
  EXPECT_EQ(s.h.runtime->stats().replicas_regenerated, 0u);
}

TEST(MigrationTest, RejectsBadTargets) {
  Scenario s(4);
  s.h.runtime->start();
  s.h.sim.run_until(from_millis(100));
  // Same node.
  EXPECT_FALSE(s.h.runtime->migrate(Scenario::kAcc, 0, 1));
  // Node hosting the peer replica.
  EXPECT_FALSE(s.h.runtime->migrate(Scenario::kAcc, 0, 2));
  // The detector/manager host.
  EXPECT_FALSE(s.h.runtime->migrate(Scenario::kAcc, 0, 0));
  // Dead target.
  s.h.cluster.fail_node(3);
  EXPECT_FALSE(s.h.runtime->migrate(Scenario::kAcc, 0, 3));
  // Bad slot / thread.
  EXPECT_FALSE(s.h.runtime->migrate(Scenario::kAcc, 7, 3));
  EXPECT_FALSE(s.h.runtime->migrate(99, 0, 3));
}

TEST(MigrationTest, NonResilientModeRefuses) {
  RuntimeConfig plain;  // resilient = false
  Harness h(3, plain);
  std::int64_t result = -1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(1, 5, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] { return std::make_unique<AccumulatorActor>(); },
                   1, {1});
  h.runtime->start();
  EXPECT_FALSE(h.runtime->migrate(1, 0, 2));
}

TEST(MigrationTest, ConcurrentMigrationBlocked) {
  Scenario s(5);
  s.h.runtime->start();
  s.h.sim.run_until(from_millis(100));
  EXPECT_TRUE(s.h.runtime->migrate(Scenario::kAcc, 0, 3));
  // Slot is in transition: a second move must be refused.
  EXPECT_FALSE(s.h.runtime->migrate(Scenario::kAcc, 0, 4));
  ASSERT_TRUE(s.h.runtime->run(from_seconds(120)));
  EXPECT_EQ(s.result, 820);
}

TEST(MigrationTest, MigrationThenCrashOfNewHostStillRecovers) {
  Scenario s(5, /*count=*/120);  // long enough that the crash lands mid-run
  cluster::FailureInjector injector(s.h.cluster);
  s.h.sim.schedule_at(from_millis(150), [&] {
    ASSERT_TRUE(s.h.runtime->migrate(Scenario::kAcc, 0, 3));
  });
  injector.schedule_crash(from_millis(800), 3);  // kill the migrated copy
  s.h.runtime->start();
  ASSERT_TRUE(s.h.runtime->run(from_seconds(240)));
  EXPECT_EQ(s.result, 7260);  // 1 + ... + 120
  EXPECT_EQ(s.h.runtime->stats().replicas_migrated, 1u);
  EXPECT_GE(s.h.runtime->stats().replicas_regenerated, 1u);
}

TEST(MigrationTest, BusyReplicaMigratesFromCheckpoint) {
  // Long per-message compute: the migration request lands mid-message and
  // must ship the checkpoint without waiting for the message to finish.
  Harness h(4);
  std::int64_t result = -1;
  h.runtime->spawn("coord", [&] {
    return std::make_unique<StreamCoordinator>(1, 10, &result);
  }, 1, {0});
  h.runtime->spawn("acc", [] {
    return std::make_unique<AccumulatorActor>(5e7);  // 0.5 s per message
  }, 2, {1, 2});
  h.runtime->start();
  h.sim.run_until(from_millis(700));  // mid message-stream
  ASSERT_TRUE(h.runtime->migrate(1, 0, 3));
  ASSERT_TRUE(h.runtime->run(from_seconds(120)));
  EXPECT_EQ(result, 55);
  EXPECT_EQ(h.runtime->stats().replicas_migrated, 1u);
}

}  // namespace
}  // namespace rif::scp
