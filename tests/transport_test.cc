// The real byte transport, bottom-up: frame codec round-trips, incremental
// reassembly from arbitrary read() fragments, corruption poisoning, the
// wire envelope and worker-plane body codecs (including truncated/oversized
// death checks), and a live SocketServer/SocketClient exchange over
// loopback TCP and a socketpair.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "net/socket_transport.h"
#include "scp/wire.h"

namespace rif::net {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int b : v) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

// --- Frame codec ------------------------------------------------------------

TEST(FrameTest, EncodeRoundTripsThroughAssembler) {
  const auto payload = bytes_of({1, 2, 3, 250, 255});
  const auto frame = encode_frame(payload);
  EXPECT_EQ(frame.size(), framed_size(payload.size()));

  FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> got;
  ASSERT_TRUE(assembler.feed(frame.data(), frame.size(),
                             [&](std::vector<std::uint8_t> p) {
                               got.push_back(std::move(p));
                             }));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
  EXPECT_EQ(assembler.pending_bytes(), 0u);
}

TEST(FrameTest, EmptyPayloadIsAValidFrame) {
  const auto frame = encode_frame({});
  FrameAssembler assembler;
  int frames = 0;
  ASSERT_TRUE(assembler.feed(frame.data(), frame.size(),
                             [&](std::vector<std::uint8_t> p) {
                               EXPECT_TRUE(p.empty());
                               ++frames;
                             }));
  EXPECT_EQ(frames, 1);
}

TEST(FrameTest, ReassemblesFromSingleByteFragments) {
  // A real socket can return one byte per read(); the assembler must
  // produce the identical frame sequence regardless of fragmentation.
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(i) * 7 + 1);
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::uint8_t>(i * 10 + j);
    }
    const auto frame = encode_frame(payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
    sent.push_back(std::move(payload));
  }

  FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> got;
  for (const std::uint8_t b : stream) {
    ASSERT_TRUE(assembler.feed(&b, 1, [&](std::vector<std::uint8_t> p) {
      got.push_back(std::move(p));
    }));
  }
  EXPECT_EQ(got, sent);
  EXPECT_EQ(assembler.pending_bytes(), 0u);
}

TEST(FrameTest, ManyFramesInOneFeed) {
  // The converse: one read() returning several complete frames plus the
  // start of another.
  const auto a = bytes_of({1});
  const auto b = bytes_of({2, 2});
  const auto c = bytes_of({3, 3, 3});
  std::vector<std::uint8_t> stream;
  for (const auto* p : {&a, &b, &c}) {
    const auto f = encode_frame(*p);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  const auto d = encode_frame(bytes_of({4, 4, 4, 4}));
  stream.insert(stream.end(), d.begin(), d.begin() + 6);  // partial tail

  FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> got;
  ASSERT_TRUE(assembler.feed(stream.data(), stream.size(),
                             [&](std::vector<std::uint8_t> p) {
                               got.push_back(std::move(p));
                             }));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
  EXPECT_EQ(got[2], c);
  EXPECT_EQ(assembler.pending_bytes(), 6u);
}

TEST(FrameTest, BadMagicPoisonsTheAssembler) {
  auto frame = encode_frame(bytes_of({1, 2, 3}));
  frame[0] ^= 0xFF;  // corrupt the magic
  FrameAssembler assembler;
  int frames = 0;
  EXPECT_FALSE(assembler.feed(frame.data(), frame.size(),
                              [&](std::vector<std::uint8_t>) { ++frames; }));
  EXPECT_EQ(frames, 0);
  EXPECT_TRUE(assembler.corrupt());
  // Poisoned: even a pristine frame is refused until the connection drops.
  const auto good = encode_frame(bytes_of({9}));
  EXPECT_FALSE(assembler.feed(good.data(), good.size(),
                              [&](std::vector<std::uint8_t>) { ++frames; }));
  EXPECT_EQ(frames, 0);
}

TEST(FrameTest, OversizedLengthPoisonsTheAssembler) {
  auto frame = encode_frame(bytes_of({1}));
  // Rewrite the length word to just past the cap.
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(frame.data() + 4, &huge, sizeof(huge));
  FrameAssembler assembler;
  EXPECT_FALSE(assembler.feed(frame.data(), frame.size(),
                              [](std::vector<std::uint8_t>) { FAIL(); }));
  EXPECT_TRUE(assembler.corrupt());
}

// --- Wire envelope + worker-plane bodies ------------------------------------

TEST(WireEnvelopeTest, FullRoundTrip) {
  scp::WireEnvelope env;
  env.kind = scp::FrameKind::kApp;
  env.src_node = 3;
  env.dst_node = 0;
  env.src = {7, 2, 11};
  env.dst = {1, 0, 4};
  env.seq = 99;
  env.msg_type = 4;
  env.declared = 123456;
  env.flag = 1;
  env.payload = bytes_of({10, 20, 30});

  const scp::WireEnvelope back = scp::WireEnvelope::decode(env.encode());
  EXPECT_EQ(back.kind, env.kind);
  EXPECT_EQ(back.src_node, env.src_node);
  EXPECT_EQ(back.dst_node, env.dst_node);
  EXPECT_EQ(back.src.tid, env.src.tid);
  EXPECT_EQ(back.src.slot, env.src.slot);
  EXPECT_EQ(back.src.incarnation, env.src.incarnation);
  EXPECT_EQ(back.dst.tid, env.dst.tid);
  EXPECT_EQ(back.seq, env.seq);
  EXPECT_EQ(back.msg_type, env.msg_type);
  EXPECT_EQ(back.declared, env.declared);
  EXPECT_EQ(back.flag, env.flag);
  EXPECT_EQ(back.payload, env.payload);

  const scp::Message msg = back.to_message();
  EXPECT_EQ(msg.type, env.msg_type);
  EXPECT_EQ(msg.payload, env.payload);
  EXPECT_EQ(msg.declared_bytes, env.declared);
}

TEST(WireEnvelopeTest, MalformedEnvelopeDies) {
  scp::WireEnvelope env;
  env.payload = bytes_of({1, 2, 3, 4});
  const auto wire = env.encode();

  auto truncated = wire;
  truncated.resize(truncated.size() - 2);
  EXPECT_DEATH((void)scp::WireEnvelope::decode(truncated), "truncated");

  auto oversized = wire;
  oversized.push_back(0);
  EXPECT_DEATH((void)scp::WireEnvelope::decode(oversized), "oversized");

  auto bad_kind = wire;
  bad_kind[0] = 0xEE;  // kind word far outside the enum
  EXPECT_DEATH((void)scp::WireEnvelope::decode(bad_kind),
               "unknown frame kind");
}

TEST(WireEnvelopeTest, TryDecodeRejectsMalformedWithoutDying) {
  scp::WireEnvelope env;
  env.kind = scp::FrameKind::kApp;
  env.seq = 7;
  env.payload = bytes_of({1, 2, 3, 4});
  const auto wire = env.encode();

  // A valid frame decodes to the same envelope the fatal path produces.
  const auto ok = scp::WireEnvelope::try_decode(wire);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->seq, 7u);
  EXPECT_EQ(ok->payload, env.payload);

  // Every malformation that kills decode() is a clean nullopt here: this
  // is the entry point for frames from untrusted socket peers.
  auto truncated = wire;
  truncated.resize(truncated.size() - 2);
  EXPECT_FALSE(scp::WireEnvelope::try_decode(truncated).has_value());

  auto oversized = wire;
  oversized.push_back(0);
  EXPECT_FALSE(scp::WireEnvelope::try_decode(oversized).has_value());

  auto bad_kind = wire;
  bad_kind[0] = 0xEE;
  EXPECT_FALSE(scp::WireEnvelope::try_decode(bad_kind).has_value());

  EXPECT_FALSE(scp::WireEnvelope::try_decode({}).has_value());
  EXPECT_FALSE(
      scp::WireEnvelope::try_decode(bytes_of({1, 0, 0, 0})).has_value());
}

TEST(WireEnvelopeTest, WorkerPlaneBodiesRoundTripAndBoundsCheck) {
  scp::HelloBody hello;
  hello.protocol_version = 2;
  hello.threads = 8;
  const scp::HelloBody hback = scp::HelloBody::decode(hello.encode());
  EXPECT_EQ(hback.protocol_version, 2u);
  EXPECT_EQ(hback.threads, 8u);

  scp::JobStartBody job;
  job.job_id = 42;
  job.width = 320;
  job.height = 240;
  job.bands = 105;
  job.screening_threshold = 0.05;
  job.output_components = 3;
  const scp::JobStartBody jback = scp::JobStartBody::decode(job.encode());
  EXPECT_EQ(jback.job_id, 42);
  EXPECT_EQ(jback.width, 320);
  EXPECT_EQ(jback.bands, 105);
  EXPECT_DOUBLE_EQ(jback.screening_threshold, 0.05);

  auto short_hello = hello.encode();
  short_hello.resize(short_hello.size() - 1);
  EXPECT_DEATH((void)scp::HelloBody::decode(short_hello), "truncated");
  auto long_hello = hello.encode();
  long_hello.push_back(0);
  EXPECT_DEATH((void)scp::HelloBody::decode(long_hello), "oversized");

  auto short_job = job.encode();
  short_job.resize(short_job.size() - 1);
  EXPECT_DEATH((void)scp::JobStartBody::decode(short_job), "malformed");
  auto long_job = job.encode();
  long_job.push_back(0);
  EXPECT_DEATH((void)scp::JobStartBody::decode(long_job), "malformed");
}

// --- Live sockets -----------------------------------------------------------

/// Collects server-side frames/closes under a lock so the poll thread and
/// the test thread can rendezvous.
struct ServerLog {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<SessionId, std::vector<std::uint8_t>>> frames;
  std::vector<SessionId> closed;

  void on_frame(SessionId s, std::vector<std::uint8_t> f) {
    std::lock_guard lock(mu);
    frames.emplace_back(s, std::move(f));
    cv.notify_all();
  }
  void on_closed(SessionId s) {
    std::lock_guard lock(mu);
    closed.push_back(s);
    cv.notify_all();
  }
  bool wait_frames(std::size_t n, double seconds = 10.0) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, std::chrono::duration<double>(seconds),
                       [&] { return frames.size() >= n; });
  }
  bool wait_closed(std::size_t n, double seconds = 10.0) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, std::chrono::duration<double>(seconds),
                       [&] { return closed.size() >= n; });
  }
};

TEST(SocketTest, LoopbackTcpEchoExchange) {
  SocketServer server;
  ASSERT_TRUE(server.listen_tcp(0));  // ephemeral port
  ASSERT_NE(server.port(), 0);

  ServerLog log;
  server.start(
      [&](SessionId s, std::vector<std::uint8_t> f) {
        // Echo every frame back with a marker byte appended.
        f.push_back(0x5A);
        server.send(s, f);
        log.on_frame(s, std::move(f));
      },
      [&](SessionId s) { log.on_closed(s); });

  SocketClient client;
  ASSERT_TRUE(client.connect_tcp("127.0.0.1", server.port()));
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  ASSERT_TRUE(client.send_frame(payload));

  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(client.read_frame(reply));
  auto expected = payload;
  expected.push_back(0x5A);
  EXPECT_EQ(reply, expected);

  client.close();
  ASSERT_TRUE(log.wait_closed(1));
  server.stop();
}

TEST(SocketTest, AdoptedSocketpairCarriesLargeFrames) {
  SocketServer server;
  ServerLog log;
  server.start(
      [&](SessionId s, std::vector<std::uint8_t> f) {
        log.on_frame(s, std::move(f));
      },
      [&](SessionId s) { log.on_closed(s); });

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const SessionId session = server.adopt(sv[0]);
  ASSERT_NE(session, kNoSession);

  SocketClient client;
  client.adopt(sv[1]);

  // A payload far beyond any single read()/write() quantum, so both the
  // client's partial-write loop and the server's incremental reassembly
  // are exercised.
  std::vector<std::uint8_t> big(4 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  ASSERT_TRUE(client.send_frame(big));
  ASSERT_TRUE(log.wait_frames(1));
  {
    std::lock_guard lock(log.mu);
    ASSERT_EQ(log.frames.size(), 1u);
    EXPECT_EQ(log.frames[0].first, session);
    EXPECT_EQ(log.frames[0].second, big);
  }

  // Server -> client, same size, then a graceful close: the client must
  // see the frame before EOF.
  ASSERT_TRUE(server.send(session, big));
  server.close_session(session);
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(client.read_frame(got));
  EXPECT_EQ(got, big);
  EXPECT_FALSE(client.read_frame(got));  // EOF after the drain

  ASSERT_TRUE(log.wait_closed(1));
  client.close();
  server.stop();
}

}  // namespace
}  // namespace rif::net
