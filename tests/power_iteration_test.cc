#include <gtest/gtest.h>

#include <cmath>

#include "linalg/jacobi_eig.h"
#include "linalg/power_iteration.h"
#include "support/rng.h"

namespace rif::linalg {
namespace {

Matrix random_spd(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix spd = a.transposed() * a;
  for (int i = 0; i < n; ++i) spd(i, i) += 0.1;
  return spd;
}

TEST(PowerIterationTest, DiagonalMatrix) {
  Matrix d(3, 3);
  d(0, 0) = 1.0;
  d(1, 1) = 10.0;
  d(2, 2) = 4.0;
  const auto r = power_eigen(d, 2);
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_NEAR(r.values[0], 10.0, 1e-7);
  EXPECT_NEAR(r.values[1], 4.0, 1e-6);
  EXPECT_NEAR(std::abs(r.vectors(1, 0)), 1.0, 1e-6);
}

class PowerVsJacobi : public ::testing::TestWithParam<int> {};

TEST_P(PowerVsJacobi, LeadingPairsAgree) {
  const int n = GetParam();
  const Matrix a = random_spd(n, 900 + n);
  const EigenResult jac = jacobi_eigen(a);
  const auto pow = power_eigen(a, 3);
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(pow.values[k], jac.values[k], 1e-5 * jac.values[0])
        << "pair " << k;
    // Vectors agree up to sign (sign convention should make them equal).
    double dot = 0.0;
    for (int i = 0; i < n; ++i) dot += pow.vectors(i, k) * jac.vectors(i, k);
    EXPECT_GT(std::abs(dot), 0.9999) << "pair " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PowerVsJacobi,
                         ::testing::Values(4, 8, 16, 32, 64));

TEST(PowerIterationTest, EigenEquationHolds) {
  const Matrix a = random_spd(20, 77);
  const auto r = power_eigen(a, 3);
  for (int k = 0; k < 3; ++k) {
    std::vector<double> v(20);
    for (int i = 0; i < 20; ++i) v[i] = r.vectors(i, k);
    const auto av = a.apply(v);
    for (int i = 0; i < 20; ++i) {
      EXPECT_NEAR(av[i], r.values[k] * v[i], 1e-5 * a.frobenius_norm());
    }
  }
}

TEST(PowerIterationTest, VectorsOrthogonal) {
  const Matrix a = random_spd(24, 33);
  const auto r = power_eigen(a, 4);
  for (int p = 0; p < 4; ++p) {
    for (int q = p + 1; q < 4; ++q) {
      double dot = 0.0;
      for (int i = 0; i < 24; ++i) {
        dot += r.vectors(i, p) * r.vectors(i, q);
      }
      EXPECT_NEAR(dot, 0.0, 1e-6);
    }
  }
}

TEST(PowerIterationTest, DeterministicForSeed) {
  const Matrix a = random_spd(16, 55);
  const auto r1 = power_eigen(a, 2);
  const auto r2 = power_eigen(a, 2);
  EXPECT_EQ(r1.values, r2.values);
}

TEST(PowerIterationTest, IterationCountsReported) {
  const Matrix a = random_spd(16, 56);
  const auto r = power_eigen(a, 2);
  ASSERT_EQ(r.iterations.size(), 2u);
  for (const int it : r.iterations) {
    EXPECT_GT(it, 0);
    EXPECT_LE(it, 500);
  }
}

TEST(PowerIterationTest, FlopsEstimateQuadraticInBands) {
  EXPECT_GT(power_eigen_flops(200, 3), 3.0 * power_eigen_flops(100, 3));
  EXPECT_LT(power_eigen_flops(200, 3), 5.0 * power_eigen_flops(100, 3));
}

}  // namespace
}  // namespace rif::linalg
