// Randomized stress sweep of the resiliency protocol: seeded random crash
// schedules and message loss, with the invariant that a replicated,
// regenerating computation always completes with the exact correct result
// as long as strikes are spaced wider than the recovery window.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/failure_injector.h"
#include "net/network.h"
#include "scp/runtime.h"
#include "sim/simulation.h"
#include "support/rng.h"
#include "support/serialize.h"

namespace rif::scp {
namespace {

constexpr std::uint32_t kAdd = 1;
constexpr std::uint32_t kReport = 2;
constexpr std::uint32_t kSum = 3;

Message int_message(std::uint32_t type, std::int64_t value) {
  Writer w;
  w.put<std::int64_t>(value);
  return Message{type, std::move(w).take(), 0};
}

class Accumulator final : public Actor {
 public:
  void on_message(ActorContext& ctx, ThreadId from,
                  const Message& msg) override {
    if (msg.type == kAdd) {
      Reader r(msg.payload);
      const std::int64_t v = r.get<std::int64_t>();
      ctx.compute(3e6, [this, v] { sum_ += v; });  // 30 ms/message
    } else if (msg.type == kReport) {
      ctx.send(from, int_message(kSum, sum_));
    }
  }
  std::vector<std::uint8_t> snapshot_state() const override {
    Writer w;
    w.put<std::int64_t>(sum_);
    return std::move(w).take();
  }
  void restore_state(const std::vector<std::uint8_t>& s) override {
    Reader r(s);
    sum_ = r.get<std::int64_t>();
  }

 private:
  std::int64_t sum_ = 0;
};

class Streamer final : public Actor {
 public:
  Streamer(ThreadId target, int count, std::int64_t* out)
      : target_(target), count_(count), out_(out) {}
  void on_start(ActorContext& ctx) override {
    for (int i = 1; i <= count_; ++i) ctx.send(target_, int_message(kAdd, i));
    ctx.send(target_, int_message(kReport, 0));
  }
  void on_message(ActorContext& ctx, ThreadId /*from*/,
                  const Message& msg) override {
    if (msg.type == kSum) {
      Reader r(msg.payload);
      *out_ = r.get<std::int64_t>();
      ctx.finish();
      ctx.shutdown_runtime();
    }
  }

 private:
  ThreadId target_;
  int count_;
  std::int64_t* out_;
};

class ResilienceStressTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ResilienceStressTest, RandomSpacedCrashesAlwaysRecovered) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  sim::Simulation sim;
  cluster::Cluster cluster(sim);
  cluster::NodeConfig nc;
  nc.flops_per_second = 1e8;
  cluster.add_nodes(6, nc);
  net::LanNetwork net(cluster);
  // Mild random message loss on top of the crashes.
  net.set_loss_probability(0.05 * rng.uniform(), seed * 3 + 1);

  RuntimeConfig rc;
  rc.resilient = true;
  rc.heartbeat_period = from_millis(20);
  rc.failure_timeout = from_millis(80);
  rc.retransmit_timeout = from_millis(60);
  rc.state_request_timeout = from_millis(150);
  Runtime runtime(cluster, net, rc);

  const int count = 60;  // ~1.8 s of accumulate work per replica
  std::int64_t result = -1;
  runtime.spawn("streamer", [&] {
    return std::make_unique<Streamer>(1, count, &result);
  }, 1, {0});
  runtime.spawn("acc", [] { return std::make_unique<Accumulator>(); }, 2,
                {1, 2});

  // 1-3 crashes on random worker-capable hosts, spaced at least 600 ms
  // apart (well beyond detection timeout + state-transfer time).
  cluster::FailureInjector injector(cluster);
  const int crashes = 1 + static_cast<int>(rng.uniform_u64(3));
  SimTime t = from_millis(200 + rng.uniform_u64(300));
  for (int i = 0; i < crashes; ++i) {
    // Victim: any node 1..5 (never the streamer/detector host 0).
    const auto victim =
        static_cast<cluster::NodeId>(1 + rng.uniform_u64(5));
    injector.schedule_crash(t, victim);
    t += from_millis(600 + rng.uniform_u64(400));
  }

  runtime.start();
  ASSERT_TRUE(runtime.run(from_seconds(600)))
      << "seed " << seed << " did not complete";
  EXPECT_EQ(result, static_cast<std::int64_t>(count) * (count + 1) / 2)
      << "seed " << seed;
  EXPECT_TRUE(runtime.all_groups_alive()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResilienceStressTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace rif::scp
