#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/color_map.h"
#include "core/pct.h"
#include "core/spectral_angle.h"
#include "hsi/metrics.h"
#include "hsi/scene.h"
#include "support/rng.h"

namespace rif::core {
namespace {

hsi::Scene test_scene(int size = 48, int bands = 24, std::uint64_t seed = 5) {
  hsi::SceneConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.bands = bands;
  cfg.seed = seed;
  return hsi::generate_scene(cfg);
}

// --- Spectral angle ------------------------------------------------------------

TEST(SpectralAngleTest, IdenticalVectorsZero) {
  std::vector<float> x{1.0f, 2.0f, 3.0f};
  EXPECT_NEAR(spectral_angle(x, x), 0.0, 1e-7);
}

TEST(SpectralAngleTest, OrthogonalVectorsHalfPi) {
  std::vector<float> x{1.0f, 0.0f};
  std::vector<float> y{0.0f, 1.0f};
  EXPECT_NEAR(spectral_angle(x, y), std::numbers::pi / 2, 1e-12);
}

TEST(SpectralAngleTest, ScaleInvariant) {
  // The key property for remote sensing: illumination intensity (a scalar
  // gain) does not change the angle.
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> x(20), y(20);
    for (int i = 0; i < 20; ++i) {
      x[i] = static_cast<float>(rng.uniform(0.01, 1.0));
      y[i] = static_cast<float>(rng.uniform(0.01, 1.0));
    }
    std::vector<float> x_scaled(20);
    for (int i = 0; i < 20; ++i) x_scaled[i] = 7.5f * x[i];
    EXPECT_NEAR(spectral_angle(x, y), spectral_angle(x_scaled, y), 1e-5);
  }
}

TEST(SpectralAngleTest, Symmetric) {
  std::vector<float> x{0.3f, 0.9f, 0.1f};
  std::vector<float> y{0.5f, 0.2f, 0.8f};
  EXPECT_DOUBLE_EQ(spectral_angle(x, y), spectral_angle(y, x));
}

// --- UniqueSet -------------------------------------------------------------------

TEST(UniqueSetTest, FirstPixelAlwaysJoins) {
  UniqueSet set(3, 0.05);
  EXPECT_TRUE(set.screen(std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(UniqueSetTest, NearDuplicateRejected) {
  UniqueSet set(3, 0.05);
  set.screen(std::vector<float>{1.0f, 2.0f, 3.0f});
  EXPECT_FALSE(set.screen(std::vector<float>{1.001f, 2.0f, 3.0f}));
  EXPECT_FALSE(set.screen(std::vector<float>{2.0f, 4.0f, 6.0f}));  // scaled
  EXPECT_EQ(set.size(), 1u);
}

TEST(UniqueSetTest, DistinctDirectionAccepted) {
  UniqueSet set(3, 0.05);
  set.screen(std::vector<float>{1.0f, 0.0f, 0.0f});
  EXPECT_TRUE(set.screen(std::vector<float>{0.0f, 1.0f, 0.0f}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(UniqueSetTest, MembersPairwiseDistinct) {
  // Invariant: every pair of members is separated by more than the
  // threshold angle.
  const auto scene = test_scene();
  std::uint64_t comparisons = 0;
  const UniqueSet set = screen_range(scene.cube, 0, scene.cube.pixel_count(),
                                     0.05, &comparisons);
  ASSERT_GE(set.size(), 3u);
  EXPECT_GT(comparisons, 0u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      EXPECT_GT(spectral_angle(set.member(i), set.member(j)), 0.05);
    }
  }
}

TEST(UniqueSetTest, EveryPixelNearSomeMember) {
  // Invariant: the set covers the scene — no pixel is farther than the
  // threshold from every member.
  const auto scene = test_scene(32);
  const UniqueSet set =
      screen_range(scene.cube, 0, scene.cube.pixel_count(), 0.05);
  for (std::int64_t p = 0; p < scene.cube.pixel_count(); p += 17) {
    EXPECT_LE(set.min_angle_to(scene.cube.pixel(p)), 0.05 + 1e-9);
  }
}

TEST(UniqueSetTest, TighterThresholdLargerSet) {
  const auto scene = test_scene();
  const auto loose =
      screen_range(scene.cube, 0, scene.cube.pixel_count(), 0.15);
  const auto tight =
      screen_range(scene.cube, 0, scene.cube.pixel_count(), 0.02);
  EXPECT_GT(tight.size(), loose.size());
}

TEST(UniqueSetTest, FlatRoundTrip) {
  const auto scene = test_scene(24);
  const UniqueSet set = screen_range(scene.cube, 0, 200, 0.05);
  const UniqueSet copy =
      UniqueSet::from_flat(scene.cube.bands(), 0.05, set.flat());
  ASSERT_EQ(copy.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_NEAR(spectral_angle(set.member(i), copy.member(i)), 0.0, 1e-9);
  }
}

TEST(UniqueSetTest, MergeDeduplicates) {
  const auto scene = test_scene(32);
  const std::int64_t half = scene.cube.pixel_count() / 2;
  const UniqueSet a = screen_range(scene.cube, 0, half, 0.05);
  const UniqueSet b =
      screen_range(scene.cube, half, scene.cube.pixel_count(), 0.05);
  UniqueSet merged(scene.cube.bands(), 0.05);
  merged.merge(a);
  merged.merge(b);
  EXPECT_LT(merged.size(), a.size() + b.size());  // overlap removed
  EXPECT_GE(merged.size(), std::max(a.size(), b.size()));
}

// --- Colour mapping ---------------------------------------------------------------

TEST(ColorMapTest, MidGreyMapsToMidGrey) {
  const std::array<ComponentScale, 3> identity{
      ComponentScale{128.0, 1.0}, ComponentScale{128.0, 1.0},
      ComponentScale{128.0, 1.0}};
  const auto rgb = map_pixel({128.0, 128.0, 128.0}, identity);
  EXPECT_EQ(rgb[0], 128);
  EXPECT_EQ(rgb[1], 128);
  EXPECT_EQ(rgb[2], 128);
}

TEST(ColorMapTest, AchromaticChannelRaisesAllBands) {
  const std::array<ComponentScale, 3> identity{
      ComponentScale{128.0, 1.0}, ComponentScale{128.0, 1.0},
      ComponentScale{128.0, 1.0}};
  const auto bright = map_pixel({228.0, 128.0, 128.0}, identity);
  const auto dark = map_pixel({28.0, 128.0, 128.0}, identity);
  for (int c = 0; c < 3; ++c) EXPECT_GT(bright[c], dark[c]);
}

TEST(ColorMapTest, OutputsClamped) {
  const std::array<ComponentScale, 3> wild{
      ComponentScale{0.0, 100.0}, ComponentScale{0.0, 100.0},
      ComponentScale{0.0, 100.0}};
  const auto hi = map_pixel({1e6, 1e6, 1e6}, wild);
  const auto lo = map_pixel({-1e6, -1e6, -1e6}, wild);
  for (int c = 0; c < 3; ++c) {
    EXPECT_LE(hi[c], 255);
    EXPECT_GE(lo[c], 0);
  }
}

TEST(ColorMapTest, ScaleCentersMean) {
  const ComponentScale s = make_scale({10.0, 2.0});
  EXPECT_DOUBLE_EQ(s.to_byte(10.0), 128.0);
  EXPECT_GT(s.to_byte(12.0), 128.0);
  EXPECT_LT(s.to_byte(8.0), 128.0);
}

TEST(ColorMapTest, PlaneStats) {
  const auto stats = plane_stats({1.0f, 3.0f});
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 1.0);
}

// --- Sequential pipeline -----------------------------------------------------------

TEST(PctPipelineTest, RunsOnSyntheticScene) {
  const auto scene = test_scene();
  const PctResult r = fuse(scene.cube);
  EXPECT_EQ(r.composite.width, scene.cube.width());
  EXPECT_EQ(r.composite.height, scene.cube.height());
  EXPECT_GE(r.unique_set_size, 3u);
  EXPECT_EQ(r.eigenvalues.size(), static_cast<std::size_t>(scene.cube.bands()));
  EXPECT_EQ(r.component_planes.size(), 3u);
}

TEST(PctPipelineTest, EigenvaluesNonNegativeDescending) {
  const auto scene = test_scene();
  const PctResult r = fuse(scene.cube);
  for (std::size_t i = 0; i < r.eigenvalues.size(); ++i) {
    EXPECT_GE(r.eigenvalues[i], -1e-9);
    if (i > 0) {
      EXPECT_GE(r.eigenvalues[i - 1], r.eigenvalues[i]);
    }
  }
}

TEST(PctPipelineTest, LeadingComponentsCaptureVariance) {
  const auto scene = test_scene();
  const PctResult r = fuse(scene.cube);
  double total = 0.0, top3 = 0.0;
  for (std::size_t i = 0; i < r.eigenvalues.size(); ++i) {
    total += std::max(r.eigenvalues[i], 0.0);
    if (i < 3) top3 += std::max(r.eigenvalues[i], 0.0);
  }
  EXPECT_GT(top3 / total, 0.85);  // spectra live near a low-dim manifold
}

TEST(PctPipelineTest, TransformedUniqueSetDecorrelated) {
  // Property: the covariance of the transformed *unique set* is diagonal
  // (that is what the PCT de-correlates in the screened algorithm).
  const auto scene = test_scene();
  const PctConfig config;
  const PctResult r = fuse(scene.cube, config);

  // Recompute the unique set and push it through the transform.
  const UniqueSet unique = screen_range(scene.cube, 0,
                                        scene.cube.pixel_count(),
                                        config.screening_threshold);
  const int k = 3;
  const linalg::Matrix t = transform_matrix(r.eigenvectors, k);
  std::vector<std::vector<double>> comps(k,
                                         std::vector<double>(unique.size()));
  std::vector<float> out(k);
  for (std::size_t i = 0; i < unique.size(); ++i) {
    transform_pixel(t, r.mean, unique.member(i), out);
    for (int c = 0; c < k; ++c) comps[c][i] = out[c];
  }
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      double cov = 0.0, va = 0.0, vb = 0.0;
      for (std::size_t i = 0; i < unique.size(); ++i) {
        cov += comps[a][i] * comps[b][i];
        va += comps[a][i] * comps[a][i];
        vb += comps[b][i] * comps[b][i];
      }
      const double corr = cov / std::sqrt(va * vb);
      EXPECT_LT(std::abs(corr), 0.05) << "components " << a << "," << b;
    }
  }
}

TEST(PctPipelineTest, ComponentVarianceMatchesEigenvalue) {
  const auto scene = test_scene();
  const PctConfig config;
  const PctResult r = fuse(scene.cube, config);
  const UniqueSet unique = screen_range(scene.cube, 0,
                                        scene.cube.pixel_count(),
                                        config.screening_threshold);
  const linalg::Matrix t = transform_matrix(r.eigenvectors, 3);
  std::vector<float> out(3);
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    transform_pixel(t, r.mean, unique.member(i), out);
    sum += out[0];
    sum2 += static_cast<double>(out[0]) * out[0];
  }
  const double n = static_cast<double>(unique.size());
  const double var = sum2 / n - (sum / n) * (sum / n);
  EXPECT_NEAR(var, r.eigenvalues[0], 0.02 * r.eigenvalues[0] + 1e-12);
}

TEST(PctPipelineTest, CompositeEnhancesCamouflagedTarget) {
  // The paper's Figure 3 claim, quantified: the fused composite separates
  // the camouflaged vehicle from its surroundings at least as well as the
  // best single band.
  const auto scene = test_scene(64, 32, 11);
  const PctResult r = fuse(scene.cube);
  const double composite_contrast =
      hsi::class_contrast(r.composite, scene.labels, hsi::Material::kCamouflage);
  const double best_band = hsi::best_band_contrast(scene.cube, scene.labels,
                                                   hsi::Material::kCamouflage);
  EXPECT_GT(composite_contrast, 0.8 * best_band);
  EXPECT_GT(composite_contrast, 1.0);  // clearly visible at all
}

TEST(PctPipelineTest, DeterministicAcrossRuns) {
  const auto scene = test_scene();
  const PctResult a = fuse(scene.cube);
  const PctResult b = fuse(scene.cube);
  EXPECT_EQ(a.composite.data, b.composite.data);
  EXPECT_EQ(a.unique_set_size, b.unique_set_size);
}

TEST(PctPipelineTest, MoreComponentsOnRequest) {
  const auto scene = test_scene();
  PctConfig config;
  config.output_components = 5;
  const PctResult r = fuse(scene.cube, config);
  EXPECT_EQ(r.component_planes.size(), 5u);
}

class ThresholdSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweepTest, PipelineRobustAcrossThresholds) {
  const auto scene = test_scene(40);
  PctConfig config;
  config.screening_threshold = GetParam();
  const PctResult r = fuse(scene.cube, config);
  EXPECT_GE(r.unique_set_size, 3u);
  EXPECT_GE(r.eigenvalues[0], 0.0);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweepTest,
                         ::testing::Values(0.02, 0.05, 0.08, 0.12, 0.2));

}  // namespace
}  // namespace rif::core
