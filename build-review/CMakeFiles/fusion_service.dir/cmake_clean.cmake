file(REMOVE_RECURSE
  "CMakeFiles/fusion_service.dir/examples/fusion_service.cpp.o"
  "CMakeFiles/fusion_service.dir/examples/fusion_service.cpp.o.d"
  "fusion_service"
  "fusion_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
