# Empty compiler generated dependencies file for fusion_service.
# This may be replaced when dependencies are built.
