# Empty compiler generated dependencies file for bench_fig4_speedup.
# This may be replaced when dependencies are built.
