file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_speedup.dir/bench/bench_fig4_speedup.cc.o"
  "CMakeFiles/bench_fig4_speedup.dir/bench/bench_fig4_speedup.cc.o.d"
  "bench_fig4_speedup"
  "bench_fig4_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
