file(REMOVE_RECURSE
  "CMakeFiles/hsi_test.dir/tests/hsi_test.cc.o"
  "CMakeFiles/hsi_test.dir/tests/hsi_test.cc.o.d"
  "hsi_test"
  "hsi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
