# Empty dependencies file for hsi_test.
# This may be replaced when dependencies are built.
