file(REMOVE_RECURSE
  "CMakeFiles/postprocess_test.dir/tests/postprocess_test.cc.o"
  "CMakeFiles/postprocess_test.dir/tests/postprocess_test.cc.o.d"
  "postprocess_test"
  "postprocess_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
