# Empty dependencies file for postprocess_test.
# This may be replaced when dependencies are built.
