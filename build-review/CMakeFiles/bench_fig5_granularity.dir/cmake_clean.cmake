file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_granularity.dir/bench/bench_fig5_granularity.cc.o"
  "CMakeFiles/bench_fig5_granularity.dir/bench/bench_fig5_granularity.cc.o.d"
  "bench_fig5_granularity"
  "bench_fig5_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
