# Empty dependencies file for bench_fig5_granularity.
# This may be replaced when dependencies are built.
