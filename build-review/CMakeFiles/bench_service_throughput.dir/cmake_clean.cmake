file(REMOVE_RECURSE
  "CMakeFiles/bench_service_throughput.dir/bench/bench_service_throughput.cc.o"
  "CMakeFiles/bench_service_throughput.dir/bench/bench_service_throughput.cc.o.d"
  "bench_service_throughput"
  "bench_service_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
