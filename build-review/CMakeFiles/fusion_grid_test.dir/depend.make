# Empty dependencies file for fusion_grid_test.
# This may be replaced when dependencies are built.
