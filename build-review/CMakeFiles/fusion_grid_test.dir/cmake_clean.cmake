file(REMOVE_RECURSE
  "CMakeFiles/fusion_grid_test.dir/tests/fusion_grid_test.cc.o"
  "CMakeFiles/fusion_grid_test.dir/tests/fusion_grid_test.cc.o.d"
  "fusion_grid_test"
  "fusion_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
