# Empty dependencies file for granularity_explorer.
# This may be replaced when dependencies are built.
