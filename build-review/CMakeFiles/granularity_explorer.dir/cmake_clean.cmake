file(REMOVE_RECURSE
  "CMakeFiles/granularity_explorer.dir/examples/granularity_explorer.cpp.o"
  "CMakeFiles/granularity_explorer.dir/examples/granularity_explorer.cpp.o.d"
  "granularity_explorer"
  "granularity_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
