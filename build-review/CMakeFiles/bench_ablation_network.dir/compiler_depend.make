# Empty compiler generated dependencies file for bench_ablation_network.
# This may be replaced when dependencies are built.
