file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_network.dir/bench/bench_ablation_network.cc.o"
  "CMakeFiles/bench_ablation_network.dir/bench/bench_ablation_network.cc.o.d"
  "bench_ablation_network"
  "bench_ablation_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
