# Empty dependencies file for bench_fig2_bands.
# This may be replaced when dependencies are built.
