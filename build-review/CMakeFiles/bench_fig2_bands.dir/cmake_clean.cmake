file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bands.dir/bench/bench_fig2_bands.cc.o"
  "CMakeFiles/bench_fig2_bands.dir/bench/bench_fig2_bands.cc.o.d"
  "bench_fig2_bands"
  "bench_fig2_bands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
