file(REMOVE_RECURSE
  "CMakeFiles/scp_test.dir/tests/scp_test.cc.o"
  "CMakeFiles/scp_test.dir/tests/scp_test.cc.o.d"
  "scp_test"
  "scp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
