# Empty dependencies file for scp_test.
# This may be replaced when dependencies are built.
