# Empty compiler generated dependencies file for bench_smp_speedup.
# This may be replaced when dependencies are built.
