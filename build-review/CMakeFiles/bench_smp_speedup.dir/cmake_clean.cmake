file(REMOVE_RECURSE
  "CMakeFiles/bench_smp_speedup.dir/bench/bench_smp_speedup.cc.o"
  "CMakeFiles/bench_smp_speedup.dir/bench/bench_smp_speedup.cc.o.d"
  "bench_smp_speedup"
  "bench_smp_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smp_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
