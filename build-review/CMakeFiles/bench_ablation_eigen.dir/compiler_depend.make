# Empty compiler generated dependencies file for bench_ablation_eigen.
# This may be replaced when dependencies are built.
