file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eigen.dir/bench/bench_ablation_eigen.cc.o"
  "CMakeFiles/bench_ablation_eigen.dir/bench/bench_ablation_eigen.cc.o.d"
  "bench_ablation_eigen"
  "bench_ablation_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
