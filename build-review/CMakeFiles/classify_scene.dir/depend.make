# Empty dependencies file for classify_scene.
# This may be replaced when dependencies are built.
