file(REMOVE_RECURSE
  "CMakeFiles/classify_scene.dir/examples/classify_scene.cpp.o"
  "CMakeFiles/classify_scene.dir/examples/classify_scene.cpp.o.d"
  "classify_scene"
  "classify_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
