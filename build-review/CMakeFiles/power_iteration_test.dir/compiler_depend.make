# Empty compiler generated dependencies file for power_iteration_test.
# This may be replaced when dependencies are built.
