file(REMOVE_RECURSE
  "CMakeFiles/power_iteration_test.dir/tests/power_iteration_test.cc.o"
  "CMakeFiles/power_iteration_test.dir/tests/power_iteration_test.cc.o.d"
  "power_iteration_test"
  "power_iteration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_iteration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
