# Empty dependencies file for sam_test.
# This may be replaced when dependencies are built.
