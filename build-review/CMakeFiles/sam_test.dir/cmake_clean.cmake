file(REMOVE_RECURSE
  "CMakeFiles/sam_test.dir/tests/sam_test.cc.o"
  "CMakeFiles/sam_test.dir/tests/sam_test.cc.o.d"
  "sam_test"
  "sam_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
