file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/tests/support_test.cc.o"
  "CMakeFiles/support_test.dir/tests/support_test.cc.o.d"
  "support_test"
  "support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
