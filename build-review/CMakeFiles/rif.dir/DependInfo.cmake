
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "CMakeFiles/rif.dir/src/cluster/cluster.cc.o" "gcc" "CMakeFiles/rif.dir/src/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/failure_injector.cc" "CMakeFiles/rif.dir/src/cluster/failure_injector.cc.o" "gcc" "CMakeFiles/rif.dir/src/cluster/failure_injector.cc.o.d"
  "/root/repo/src/cluster/lease.cc" "CMakeFiles/rif.dir/src/cluster/lease.cc.o" "gcc" "CMakeFiles/rif.dir/src/cluster/lease.cc.o.d"
  "/root/repo/src/cluster/node.cc" "CMakeFiles/rif.dir/src/cluster/node.cc.o" "gcc" "CMakeFiles/rif.dir/src/cluster/node.cc.o.d"
  "/root/repo/src/cluster/placement.cc" "CMakeFiles/rif.dir/src/cluster/placement.cc.o" "gcc" "CMakeFiles/rif.dir/src/cluster/placement.cc.o.d"
  "/root/repo/src/core/color_map.cc" "CMakeFiles/rif.dir/src/core/color_map.cc.o" "gcc" "CMakeFiles/rif.dir/src/core/color_map.cc.o.d"
  "/root/repo/src/core/distributed/fusion_actors.cc" "CMakeFiles/rif.dir/src/core/distributed/fusion_actors.cc.o" "gcc" "CMakeFiles/rif.dir/src/core/distributed/fusion_actors.cc.o.d"
  "/root/repo/src/core/distributed/fusion_job.cc" "CMakeFiles/rif.dir/src/core/distributed/fusion_job.cc.o" "gcc" "CMakeFiles/rif.dir/src/core/distributed/fusion_job.cc.o.d"
  "/root/repo/src/core/parallel/parallel_pct.cc" "CMakeFiles/rif.dir/src/core/parallel/parallel_pct.cc.o" "gcc" "CMakeFiles/rif.dir/src/core/parallel/parallel_pct.cc.o.d"
  "/root/repo/src/core/parallel/thread_pool.cc" "CMakeFiles/rif.dir/src/core/parallel/thread_pool.cc.o" "gcc" "CMakeFiles/rif.dir/src/core/parallel/thread_pool.cc.o.d"
  "/root/repo/src/core/pct.cc" "CMakeFiles/rif.dir/src/core/pct.cc.o" "gcc" "CMakeFiles/rif.dir/src/core/pct.cc.o.d"
  "/root/repo/src/core/postprocess.cc" "CMakeFiles/rif.dir/src/core/postprocess.cc.o" "gcc" "CMakeFiles/rif.dir/src/core/postprocess.cc.o.d"
  "/root/repo/src/core/sam_classifier.cc" "CMakeFiles/rif.dir/src/core/sam_classifier.cc.o" "gcc" "CMakeFiles/rif.dir/src/core/sam_classifier.cc.o.d"
  "/root/repo/src/core/spectral_angle.cc" "CMakeFiles/rif.dir/src/core/spectral_angle.cc.o" "gcc" "CMakeFiles/rif.dir/src/core/spectral_angle.cc.o.d"
  "/root/repo/src/hsi/cube_io.cc" "CMakeFiles/rif.dir/src/hsi/cube_io.cc.o" "gcc" "CMakeFiles/rif.dir/src/hsi/cube_io.cc.o.d"
  "/root/repo/src/hsi/image_io.cc" "CMakeFiles/rif.dir/src/hsi/image_io.cc.o" "gcc" "CMakeFiles/rif.dir/src/hsi/image_io.cc.o.d"
  "/root/repo/src/hsi/metrics.cc" "CMakeFiles/rif.dir/src/hsi/metrics.cc.o" "gcc" "CMakeFiles/rif.dir/src/hsi/metrics.cc.o.d"
  "/root/repo/src/hsi/partition.cc" "CMakeFiles/rif.dir/src/hsi/partition.cc.o" "gcc" "CMakeFiles/rif.dir/src/hsi/partition.cc.o.d"
  "/root/repo/src/hsi/scene.cc" "CMakeFiles/rif.dir/src/hsi/scene.cc.o" "gcc" "CMakeFiles/rif.dir/src/hsi/scene.cc.o.d"
  "/root/repo/src/hsi/spectra.cc" "CMakeFiles/rif.dir/src/hsi/spectra.cc.o" "gcc" "CMakeFiles/rif.dir/src/hsi/spectra.cc.o.d"
  "/root/repo/src/linalg/jacobi_eig.cc" "CMakeFiles/rif.dir/src/linalg/jacobi_eig.cc.o" "gcc" "CMakeFiles/rif.dir/src/linalg/jacobi_eig.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "CMakeFiles/rif.dir/src/linalg/matrix.cc.o" "gcc" "CMakeFiles/rif.dir/src/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/power_iteration.cc" "CMakeFiles/rif.dir/src/linalg/power_iteration.cc.o" "gcc" "CMakeFiles/rif.dir/src/linalg/power_iteration.cc.o.d"
  "/root/repo/src/linalg/stats.cc" "CMakeFiles/rif.dir/src/linalg/stats.cc.o" "gcc" "CMakeFiles/rif.dir/src/linalg/stats.cc.o.d"
  "/root/repo/src/net/network.cc" "CMakeFiles/rif.dir/src/net/network.cc.o" "gcc" "CMakeFiles/rif.dir/src/net/network.cc.o.d"
  "/root/repo/src/scp/runtime.cc" "CMakeFiles/rif.dir/src/scp/runtime.cc.o" "gcc" "CMakeFiles/rif.dir/src/scp/runtime.cc.o.d"
  "/root/repo/src/service/accounting.cc" "CMakeFiles/rif.dir/src/service/accounting.cc.o" "gcc" "CMakeFiles/rif.dir/src/service/accounting.cc.o.d"
  "/root/repo/src/service/job_queue.cc" "CMakeFiles/rif.dir/src/service/job_queue.cc.o" "gcc" "CMakeFiles/rif.dir/src/service/job_queue.cc.o.d"
  "/root/repo/src/service/scheduler.cc" "CMakeFiles/rif.dir/src/service/scheduler.cc.o" "gcc" "CMakeFiles/rif.dir/src/service/scheduler.cc.o.d"
  "/root/repo/src/service/service.cc" "CMakeFiles/rif.dir/src/service/service.cc.o" "gcc" "CMakeFiles/rif.dir/src/service/service.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "CMakeFiles/rif.dir/src/sim/simulation.cc.o" "gcc" "CMakeFiles/rif.dir/src/sim/simulation.cc.o.d"
  "/root/repo/src/sim/trace.cc" "CMakeFiles/rif.dir/src/sim/trace.cc.o" "gcc" "CMakeFiles/rif.dir/src/sim/trace.cc.o.d"
  "/root/repo/src/sim/trace_export.cc" "CMakeFiles/rif.dir/src/sim/trace_export.cc.o" "gcc" "CMakeFiles/rif.dir/src/sim/trace_export.cc.o.d"
  "/root/repo/src/support/log.cc" "CMakeFiles/rif.dir/src/support/log.cc.o" "gcc" "CMakeFiles/rif.dir/src/support/log.cc.o.d"
  "/root/repo/src/support/rng.cc" "CMakeFiles/rif.dir/src/support/rng.cc.o" "gcc" "CMakeFiles/rif.dir/src/support/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
