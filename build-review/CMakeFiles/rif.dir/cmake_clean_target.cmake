file(REMOVE_RECURSE
  "librif.a"
)
