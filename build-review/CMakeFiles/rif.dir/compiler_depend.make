# Empty compiler generated dependencies file for rif.
# This may be replaced when dependencies are built.
