file(REMOVE_RECURSE
  "CMakeFiles/service_test.dir/tests/service_test.cc.o"
  "CMakeFiles/service_test.dir/tests/service_test.cc.o.d"
  "service_test"
  "service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
