# Empty dependencies file for cube_io_test.
# This may be replaced when dependencies are built.
