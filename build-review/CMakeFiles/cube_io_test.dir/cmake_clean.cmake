file(REMOVE_RECURSE
  "CMakeFiles/cube_io_test.dir/tests/cube_io_test.cc.o"
  "CMakeFiles/cube_io_test.dir/tests/cube_io_test.cc.o.d"
  "cube_io_test"
  "cube_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
