# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cube_io_test.
