file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/tests/net_test.cc.o"
  "CMakeFiles/net_test.dir/tests/net_test.cc.o.d"
  "net_test"
  "net_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
