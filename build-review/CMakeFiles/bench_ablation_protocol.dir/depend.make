# Empty dependencies file for bench_ablation_protocol.
# This may be replaced when dependencies are built.
