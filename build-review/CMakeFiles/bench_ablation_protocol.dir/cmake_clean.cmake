file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_protocol.dir/bench/bench_ablation_protocol.cc.o"
  "CMakeFiles/bench_ablation_protocol.dir/bench/bench_ablation_protocol.cc.o.d"
  "bench_ablation_protocol"
  "bench_ablation_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
