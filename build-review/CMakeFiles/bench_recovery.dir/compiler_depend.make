# Empty compiler generated dependencies file for bench_recovery.
# This may be replaced when dependencies are built.
