file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery.dir/bench/bench_recovery.cc.o"
  "CMakeFiles/bench_recovery.dir/bench/bench_recovery.cc.o.d"
  "bench_recovery"
  "bench_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
