file(REMOVE_RECURSE
  "CMakeFiles/bench_kernels.dir/bench/bench_kernels.cc.o"
  "CMakeFiles/bench_kernels.dir/bench/bench_kernels.cc.o.d"
  "bench_kernels"
  "bench_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
