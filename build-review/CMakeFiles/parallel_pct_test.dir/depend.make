# Empty dependencies file for parallel_pct_test.
# This may be replaced when dependencies are built.
