file(REMOVE_RECURSE
  "CMakeFiles/parallel_pct_test.dir/tests/parallel_pct_test.cc.o"
  "CMakeFiles/parallel_pct_test.dir/tests/parallel_pct_test.cc.o.d"
  "parallel_pct_test"
  "parallel_pct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_pct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
