file(REMOVE_RECURSE
  "CMakeFiles/pct_test.dir/tests/pct_test.cc.o"
  "CMakeFiles/pct_test.dir/tests/pct_test.cc.o.d"
  "pct_test"
  "pct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
