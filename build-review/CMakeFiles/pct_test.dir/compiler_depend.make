# Empty compiler generated dependencies file for pct_test.
# This may be replaced when dependencies are built.
