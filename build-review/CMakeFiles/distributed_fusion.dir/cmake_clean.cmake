file(REMOVE_RECURSE
  "CMakeFiles/distributed_fusion.dir/examples/distributed_fusion.cpp.o"
  "CMakeFiles/distributed_fusion.dir/examples/distributed_fusion.cpp.o.d"
  "distributed_fusion"
  "distributed_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
