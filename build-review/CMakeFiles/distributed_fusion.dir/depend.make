# Empty dependencies file for distributed_fusion.
# This may be replaced when dependencies are built.
