# Empty compiler generated dependencies file for bench_fig3_composite.
# This may be replaced when dependencies are built.
