file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_composite.dir/bench/bench_fig3_composite.cc.o"
  "CMakeFiles/bench_fig3_composite.dir/bench/bench_fig3_composite.cc.o.d"
  "bench_fig3_composite"
  "bench_fig3_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
