file(REMOVE_RECURSE
  "CMakeFiles/attack_scenario.dir/examples/attack_scenario.cpp.o"
  "CMakeFiles/attack_scenario.dir/examples/attack_scenario.cpp.o.d"
  "attack_scenario"
  "attack_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
