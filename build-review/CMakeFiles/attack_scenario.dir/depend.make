# Empty dependencies file for attack_scenario.
# This may be replaced when dependencies are built.
