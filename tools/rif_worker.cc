// rif_worker — a real worker process for the remote fusion plane.
//
// Connects to a FusionService's socket transport (tools/rif_worker runs the
// exact serve loop the in-process test workers run: cluster/remote_worker.h),
// leases itself into the pool with kHello, executes shards with the same
// kernels as the sim WorkerActor, and exits when the service says kGoodbye.
//
// Resilience: connect retries use exponential backoff with jitter (seeded
// by pid, so a fleet launched together de-synchronises its retry storms
// instead of hammering the listener in lockstep), and an UNEXPECTED
// disconnect mid-protocol re-enters the connect loop — the worker re-leases
// itself into a restarted pool with a fresh kHello rather than dying with
// the old one. Only a clean kGoodbye, an exhausted attempt budget, or an
// expired retry window end the process.
//
// Usage:
//   rif_worker --tcp <host>:<port>        connect over loopback/LAN TCP
//   rif_worker --unix <path>              connect over a Unix-domain socket
//   [--retry-seconds <s>]                 per-connect-phase retry window
//                                         (default 10) — workers are
//                                         typically launched BEFORE the
//                                         service binds its listener.
//   [--max-attempts <n>]                  total connect-attempt budget
//                                         across all phases (default 0 =
//                                         bounded by --retry-seconds only)
//   [--no-reconnect]                      exit 1 on unexpected disconnect
//                                         instead of re-leasing
//
// Exit status: 0 on a clean kGoodbye shutdown, 1 on connect failure or an
// unexpected disconnect with reconnection disabled/exhausted.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "cluster/remote_worker.h"
#include "net/backoff.h"
#include "net/socket_transport.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--tcp <host>:<port> | --unix <path>) "
               "[--retry-seconds <s>] [--max-attempts <n>] [--no-reconnect] "
               "[--no-telemetry] [--telemetry-flush-seconds <s>]\n",
               argv0);
}

struct ConnectTarget {
  bool use_tcp = false;
  std::string host;
  std::uint16_t port = 0;
  std::string unix_path;
};

/// One connect phase: retry with backoff until connected, the window
/// expires, or the shared attempt budget runs out. `attempts_used` is
/// cumulative across phases so --max-attempts bounds the process, not
/// each phase.
bool connect_with_backoff(rif::net::SocketClient& client,
                          const ConnectTarget& target, double retry_seconds,
                          int max_attempts, int& attempts_used,
                          rif::net::Backoff& backoff) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(retry_seconds);
  backoff.reset();
  for (;;) {
    if (max_attempts > 0 && attempts_used >= max_attempts) return false;
    ++attempts_used;
    const bool ok = target.use_tcp
                        ? client.connect_tcp(target.host, target.port)
                        : client.connect_unix(target.unix_path);
    if (ok) return true;
    const double delay = backoff.next_delay_seconds();
    if (std::chrono::steady_clock::now() +
            std::chrono::duration<double>(delay) >=
        deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ConnectTarget target;
  bool have_target = false;
  double retry_seconds = 10.0;
  int max_attempts = 0;
  bool reconnect = true;
  rif::cluster::RemoteWorkerOptions worker_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tcp" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        usage(argv[0]);
        return 1;
      }
      target.host = spec.substr(0, colon);
      target.port = static_cast<std::uint16_t>(
          std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
      target.use_tcp = true;
      have_target = true;
    } else if (arg == "--unix" && i + 1 < argc) {
      target.unix_path = argv[++i];
      target.use_tcp = false;
      have_target = true;
    } else if (arg == "--retry-seconds" && i + 1 < argc) {
      retry_seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--max-attempts" && i + 1 < argc) {
      max_attempts = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--no-reconnect") {
      reconnect = false;
    } else if (arg == "--no-telemetry") {
      worker_options.telemetry = false;
    } else if (arg == "--telemetry-flush-seconds" && i + 1 < argc) {
      worker_options.telemetry_flush_seconds = std::strtod(argv[++i], nullptr);
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (!have_target) {
    usage(argv[0]);
    return 1;
  }

  rif::net::BackoffConfig bcfg;
  bcfg.seed = static_cast<std::uint64_t>(::getpid());
  rif::net::Backoff backoff(bcfg);
  int attempts_used = 0;

  rif::cluster::RemoteWorkerStats total;
  for (;;) {
    rif::net::SocketClient client;
    if (!connect_with_backoff(client, target, retry_seconds, max_attempts,
                              attempts_used, backoff)) {
      std::fprintf(stderr,
                   "rif_worker: could not connect (%d attempts, %.1fs "
                   "window)\n",
                   attempts_used, retry_seconds);
      return 1;
    }
    const rif::cluster::RemoteWorkerStats stats =
        rif::cluster::serve_remote_worker(client, worker_options);
    client.close();
    total.node = stats.node;
    total.jobs += stats.jobs;
    total.tiles_screened += stats.tiles_screened;
    total.shards_summed += stats.shards_summed;
    total.tiles_colored += stats.tiles_colored;
    total.pings_answered += stats.pings_answered;
    total.telemetry_flushes += stats.telemetry_flushes;
    total.logs_shipped += stats.logs_shipped;
    total.clean_exit = stats.clean_exit;
    if (stats.clean_exit) break;
    if (!reconnect) break;
    if (max_attempts > 0 && attempts_used >= max_attempts) break;
    std::fprintf(stderr,
                 "rif_worker: connection lost mid-protocol; re-leasing\n");
  }

  std::printf(
      "rif_worker node=%d jobs=%llu tiles_screened=%llu shards_summed=%llu "
      "tiles_colored=%llu pings_answered=%llu telemetry_flushes=%llu "
      "logs_shipped=%llu clean_exit=%d\n",
      total.node, static_cast<unsigned long long>(total.jobs),
      static_cast<unsigned long long>(total.tiles_screened),
      static_cast<unsigned long long>(total.shards_summed),
      static_cast<unsigned long long>(total.tiles_colored),
      static_cast<unsigned long long>(total.pings_answered),
      static_cast<unsigned long long>(total.telemetry_flushes),
      static_cast<unsigned long long>(total.logs_shipped),
      total.clean_exit ? 1 : 0);
  return total.clean_exit ? 0 : 1;
}
