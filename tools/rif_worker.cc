// rif_worker — a real worker process for the remote fusion plane.
//
// Connects to a FusionService's socket transport (tools/rif_worker runs the
// exact serve loop the in-process test workers run: cluster/remote_worker.h),
// leases itself into the pool with kHello, executes shards with the same
// kernels as the sim WorkerActor, and exits when the service says kGoodbye.
//
// Usage:
//   rif_worker --tcp <host>:<port>        connect over loopback/LAN TCP
//   rif_worker --unix <path>              connect over a Unix-domain socket
//   [--retry-seconds <s>]                 keep retrying the connect for this
//                                         long (default 10) — workers are
//                                         typically launched BEFORE the
//                                         service binds its listener.
//
// Exit status: 0 on a clean kGoodbye shutdown, 1 on connect failure or an
// unexpected disconnect mid-protocol.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "cluster/remote_worker.h"
#include "net/socket_transport.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--tcp <host>:<port> | --unix <path>) "
               "[--retry-seconds <s>]\n",
               argv0);
}

bool connect_with_retry(rif::net::SocketClient& client, bool use_tcp,
                        const std::string& host, std::uint16_t port,
                        const std::string& unix_path, double retry_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(retry_seconds);
  for (;;) {
    const bool ok = use_tcp ? client.connect_tcp(host, port)
                            : client.connect_unix(unix_path);
    if (ok) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool use_tcp = false;
  bool have_target = false;
  std::string host;
  std::uint16_t port = 0;
  std::string unix_path;
  double retry_seconds = 10.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tcp" && i + 1 < argc) {
      const std::string target = argv[++i];
      const std::size_t colon = target.rfind(':');
      if (colon == std::string::npos) {
        usage(argv[0]);
        return 1;
      }
      host = target.substr(0, colon);
      port = static_cast<std::uint16_t>(
          std::strtoul(target.c_str() + colon + 1, nullptr, 10));
      use_tcp = true;
      have_target = true;
    } else if (arg == "--unix" && i + 1 < argc) {
      unix_path = argv[++i];
      use_tcp = false;
      have_target = true;
    } else if (arg == "--retry-seconds" && i + 1 < argc) {
      retry_seconds = std::strtod(argv[++i], nullptr);
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (!have_target) {
    usage(argv[0]);
    return 1;
  }

  rif::net::SocketClient client;
  if (!connect_with_retry(client, use_tcp, host, port, unix_path,
                          retry_seconds)) {
    std::fprintf(stderr, "rif_worker: could not connect after %.1fs\n",
                 retry_seconds);
    return 1;
  }

  const rif::cluster::RemoteWorkerStats stats =
      rif::cluster::serve_remote_worker(client);
  client.close();

  std::printf(
      "rif_worker node=%d jobs=%llu tiles_screened=%llu shards_summed=%llu "
      "tiles_colored=%llu clean_exit=%d\n",
      stats.node, static_cast<unsigned long long>(stats.jobs),
      static_cast<unsigned long long>(stats.tiles_screened),
      static_cast<unsigned long long>(stats.shards_summed),
      static_cast<unsigned long long>(stats.tiles_colored),
      stats.clean_exit ? 1 : 0);
  return stats.clean_exit ? 0 : 1;
}
