// rif_ops — command-line client for a FusionService's live ops endpoint
// (obs/ops_server.h).
//
// Speaks the RIF1 frame codec over TCP or a Unix socket: one plain-text
// command per request frame, JSON / NDJSON back. Everything prints to
// stdout, so the natural idiom is piping into jq or wc.
//
// Usage:
//   rif_ops <command> (--connect <host>:<port> | --unix <path>) [options]
//
// Commands:
//   status                 one JSON object: uptime, job counts, workers,
//                          ops-plane health
//   metrics                one JSON object: the full registry snapshot
//   tail [--samples <n>]   subscribe to the live metrics stream and print
//                          <n> NDJSON samples (default 5), one per line
//   logs [--n <n>]         the newest <n> structured log records as NDJSON
//                          (server default when --n is omitted)
//   flame                  one JSON object: the current flamegraph fold
//
// Exit status: 0 on success, 1 on usage/connect/protocol error.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/socket_transport.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (status|metrics|tail|logs|flame) "
               "(--connect <host>:<port> | --unix <path>) "
               "[--samples <n>] [--n <n>]\n",
               argv0);
}

bool send_text(rif::net::SocketClient& client, const std::string& text) {
  return client.send_frame(
      std::vector<std::uint8_t>(text.begin(), text.end()));
}

bool read_text(rif::net::SocketClient& client, std::string& out) {
  std::vector<std::uint8_t> frame;
  if (!client.read_frame(frame)) return false;
  out.assign(frame.begin(), frame.end());
  return true;
}

/// One request, one reply, printed. The whole vocabulary except `tail`.
int request_reply(rif::net::SocketClient& client, const std::string& command) {
  std::string reply;
  if (!send_text(client, command) || !read_text(client, reply)) {
    std::fprintf(stderr, "rif_ops: no reply to '%s'\n", command.c_str());
    return 1;
  }
  std::printf("%s\n", reply.c_str());
  return 0;
}

int tail_samples(rif::net::SocketClient& client, int samples) {
  std::string ack;
  if (!send_text(client, "subscribe-metrics") || !read_text(client, ack)) {
    std::fprintf(stderr, "rif_ops: subscribe failed\n");
    return 1;
  }
  if (ack.find("\"subscribed\"") == std::string::npos) {
    std::fprintf(stderr, "rif_ops: unexpected ack: %s\n", ack.c_str());
    return 1;
  }
  for (int i = 0; i < samples; ++i) {
    std::string line;
    if (!read_text(client, line)) {
      std::fprintf(stderr, "rif_ops: stream ended after %d/%d samples\n", i,
                   samples);
      return 1;
    }
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  const std::string command = argv[1];
  bool use_tcp = false;
  bool have_target = false;
  std::string host;
  std::uint16_t port = 0;
  std::string unix_path;
  int samples = 5;
  long logs_n = -1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        usage(argv[0]);
        return 1;
      }
      host = spec.substr(0, colon);
      port = static_cast<std::uint16_t>(
          std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
      use_tcp = true;
      have_target = true;
    } else if (arg == "--unix" && i + 1 < argc) {
      unix_path = argv[++i];
      use_tcp = false;
      have_target = true;
    } else if (arg == "--samples" && i + 1 < argc) {
      samples = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--n" && i + 1 < argc) {
      logs_n = std::strtol(argv[++i], nullptr, 10);
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (!have_target || samples < 1) {
    usage(argv[0]);
    return 1;
  }

  rif::net::SocketClient client;
  const bool connected = use_tcp ? client.connect_tcp(host, port)
                                 : client.connect_unix(unix_path);
  if (!connected) {
    std::fprintf(stderr, "rif_ops: cannot connect\n");
    return 1;
  }

  int rc = 1;
  if (command == "status") {
    rc = request_reply(client, "status");
  } else if (command == "metrics") {
    rc = request_reply(client, "metrics");
  } else if (command == "flame") {
    rc = request_reply(client, "flamegraph");
  } else if (command == "logs") {
    rc = request_reply(client, logs_n > 0
                                   ? "logs " + std::to_string(logs_n)
                                   : std::string("logs"));
  } else if (command == "tail") {
    rc = tail_samples(client, samples);
  } else {
    usage(argv[0]);
  }
  client.close();
  return rc;
}
